//! Topology mutations — the paper's §1 motivating scenario made
//! declarative.
//!
//! "The topology or size of the network might change", forcing the master
//! to re-determine the map. This module turns such changes into data: a
//! [`TopologyMutation`] names one structural edit (drop a wire, add a
//! wire, rewire a wire's head, swap two processors' labels), a
//! [`ScheduledMutation`] stamps it with the global clock tick at which it
//! happens, and a [`MutationSchedule`] is the full timeline of a dynamic
//! scenario.
//!
//! Mutations are **validity-preserving**: [`Topology::apply`] never
//! produces a network that violates the model (δ port bound, ≥ 1
//! connected in-/out-port per processor, no self-loops) or breaks strong
//! connectivity — the protocol's standing precondition. Each mutation
//! carries a `selector`: a deterministic scan starts at the selector and
//! settles on the first candidate edit whose result is valid, so the same
//! `(topology, mutation)` pair always yields the identical new topology
//! and campaign grids stay byte-reproducible. When *no* candidate of the
//! requested kind exists (a directed ring cannot lose a wire — every edge
//! is a bridge), [`Topology::apply`] reports
//! [`MutationError::NoCandidate`] and
//! [`Topology::apply_or_fallback`] degrades to the always-applicable
//! [`MutationKind::SwapLabels`] so a scheduled network event still
//! happens and remap latency stays measurable.
//!
//! ```
//! use gtd_netsim::{generators, MutationKind, TopologyMutation};
//!
//! let topo = generators::random_sc(24, 3, 7);
//! let mutated = topo
//!     .apply(&TopologyMutation { kind: MutationKind::DropEdge, selector: 3 })
//!     .expect("a random-sc graph has droppable wires");
//! assert_eq!(mutated.num_edges(), topo.num_edges() - 1);
//! assert!(gtd_netsim::algo::is_strongly_connected(&mutated));
//! ```

use crate::algo;
use crate::ids::{NodeId, Port};
use crate::topology::{Edge, Topology, TopologyBuilder};
use std::fmt;
use std::str::FromStr;

/// The four structural edits a network can undergo.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// `drop-edge` — remove one wire.
    DropEdge,
    /// `add-edge` — wire a free out-port to a free in-port.
    AddEdge,
    /// `rewire` — exchange the heads of two wires (degree-preserving, so
    /// it applies even to port-saturated networks).
    RewirePort,
    /// `swap` — exchange two processors' positions in the wiring (as if
    /// their cable bundles were swapped). Always applicable.
    SwapLabels,
}

impl MutationKind {
    /// Every kind, in canonical (registry) order.
    pub const ALL: [MutationKind; 4] = [
        MutationKind::DropEdge,
        MutationKind::AddEdge,
        MutationKind::RewirePort,
        MutationKind::SwapLabels,
    ];

    /// Stable suffix-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropEdge => "drop-edge",
            MutationKind::AddEdge => "add-edge",
            MutationKind::RewirePort => "rewire",
            MutationKind::SwapLabels => "swap",
        }
    }

    /// Look a kind up by its grammar name.
    pub fn by_name(name: &str) -> Option<MutationKind> {
        MutationKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Registry entry describing one mutation kind (mirrors
/// [`FamilySpec`](crate::spec::FamilySpec) for the suffix grammar).
#[derive(Clone, Copy, Debug)]
pub struct MutationSpec {
    /// Suffix-grammar name (matches [`MutationKind::name`]).
    pub name: &'static str,
    /// A canonical suffix example.
    pub example: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every mutation kind, in display order — the enumerable source of truth
/// for `harness list`, docs and property tests.
pub const MUTATION_REGISTRY: &[MutationSpec] = &[
    MutationSpec {
        name: "drop-edge",
        example: "drop-edge=3@t500",
        summary: "remove one wire (validity-preserving scan from the selector)",
    },
    MutationSpec {
        name: "add-edge",
        example: "add-edge=1@t200",
        summary: "wire a free out-port to a free in-port",
    },
    MutationSpec {
        name: "rewire",
        example: "rewire=2@t200",
        summary: "exchange the heads of two wires (degree-preserving)",
    },
    MutationSpec {
        name: "swap",
        example: "swap=5@t900",
        summary: "swap two processors' cable bundles (always applicable)",
    },
];

/// One structural edit, selected deterministically.
///
/// The `selector` is not an exact edge index but the *start* of a
/// deterministic candidate scan: the mutation applies to the first
/// candidate (cyclically from the selector) whose result is a valid,
/// strongly-connected network. This keeps mutations total over their
/// candidate space and independent of how the topology was produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TopologyMutation {
    /// What kind of edit.
    pub kind: MutationKind,
    /// Deterministic candidate selector.
    pub selector: u64,
}

impl fmt::Display for TopologyMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.kind, self.selector)
    }
}

/// A mutation stamped with the global clock tick at which it happens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduledMutation {
    /// Global tick at which the edit takes effect (between ticks).
    pub tick: u64,
    /// The edit.
    pub mutation: TopologyMutation,
}

impl fmt::Display for ScheduledMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@t{}", self.mutation, self.tick)
    }
}

/// Why a mutation suffix (`kind=selector@tTICK`) failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationSuffixError {
    /// The suffix was empty.
    Empty,
    /// No `@t…` tick stamp.
    MissingTick,
    /// The tick after `@t` is not an unsigned integer (or the `t` marker
    /// is missing).
    BadTick {
        /// The offending tick text (after `@`).
        value: String,
    },
    /// The kind before `=` is not in the [`MUTATION_REGISTRY`].
    UnknownKind {
        /// The name that was given.
        kind: String,
    },
    /// A known kind with no `=selector`.
    MissingSelector,
    /// The selector after `=` is not an unsigned integer.
    BadSelector {
        /// The offending selector text.
        value: String,
    },
}

impl fmt::Display for MutationSuffixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationSuffixError::Empty => write!(f, "empty mutation suffix"),
            MutationSuffixError::MissingTick => {
                write!(f, "missing @t tick stamp (expected kind=selector@tTICK)")
            }
            MutationSuffixError::BadTick { value } => {
                write!(f, "tick {value:?} is not t<unsigned integer>")
            }
            MutationSuffixError::UnknownKind { kind } => {
                let known: Vec<&str> = MUTATION_REGISTRY.iter().map(|m| m.name).collect();
                write!(
                    f,
                    "unknown mutation kind {kind:?} (known: {})",
                    known.join(", ")
                )
            }
            MutationSuffixError::MissingSelector => {
                write!(f, "missing =selector (expected kind=selector@tTICK)")
            }
            MutationSuffixError::BadSelector { value } => {
                write!(f, "selector {value:?} is not an unsigned integer")
            }
        }
    }
}

impl std::error::Error for MutationSuffixError {}

impl ScheduledMutation {
    /// Parse one `kind=selector@tTICK` suffix. On failure the scheduled
    /// tick is reported alongside the reason whenever it parsed — spec
    /// errors must name the offending suffix *and* tick.
    pub fn parse_suffix(s: &str) -> Result<Self, (Option<u64>, MutationSuffixError)> {
        let s = s.trim();
        if s.is_empty() {
            return Err((None, MutationSuffixError::Empty));
        }
        let (head, tick_text) = s
            .split_once('@')
            .ok_or((None, MutationSuffixError::MissingTick))?;
        let tick_text = tick_text.trim();
        let tick: u64 = tick_text
            .strip_prefix('t')
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| {
                (
                    None,
                    MutationSuffixError::BadTick {
                        value: tick_text.to_string(),
                    },
                )
            })?;
        let head = head.trim();
        let (kind_text, selector_text) = match head.split_once('=') {
            Some((k, v)) => (k.trim(), Some(v.trim())),
            None => (head, None),
        };
        let kind = MutationKind::by_name(kind_text).ok_or_else(|| {
            (
                Some(tick),
                MutationSuffixError::UnknownKind {
                    kind: kind_text.to_string(),
                },
            )
        })?;
        let selector_text =
            selector_text.ok_or((Some(tick), MutationSuffixError::MissingSelector))?;
        let selector: u64 = selector_text.parse().map_err(|_| {
            (
                Some(tick),
                MutationSuffixError::BadSelector {
                    value: selector_text.to_string(),
                },
            )
        })?;
        Ok(ScheduledMutation {
            tick,
            mutation: TopologyMutation { kind, selector },
        })
    }
}

impl FromStr for ScheduledMutation {
    type Err = MutationSuffixError;

    fn from_str(s: &str) -> Result<Self, MutationSuffixError> {
        ScheduledMutation::parse_suffix(s).map_err(|(_, reason)| reason)
    }
}

/// A tick-ordered timeline of mutations (the dynamic half of a
/// [`DynamicSpec`](crate::spec::DynamicSpec)).
///
/// Insertion keeps the schedule sorted by tick (stable, so same-tick
/// mutations keep their insertion order), which makes the rendered suffix
/// string canonical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationSchedule {
    items: Vec<ScheduledMutation>,
}

impl MutationSchedule {
    /// An empty (static) schedule.
    pub fn new() -> Self {
        MutationSchedule::default()
    }

    /// Add a mutation at `tick`, keeping the timeline sorted.
    pub fn push(&mut self, tick: u64, mutation: TopologyMutation) {
        self.items.push(ScheduledMutation { tick, mutation });
        self.items.sort_by_key(|s| s.tick);
    }

    /// Builder-style [`MutationSchedule::push`].
    pub fn with(mut self, tick: u64, mutation: TopologyMutation) -> Self {
        self.push(tick, mutation);
        self
    }

    /// Number of scheduled mutations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the schedule empty (a static scenario)?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The timeline in tick order.
    pub fn items(&self) -> &[ScheduledMutation] {
        &self.items
    }

    /// Iterate the timeline in tick order.
    pub fn iter(&self) -> impl Iterator<Item = &ScheduledMutation> {
        self.items.iter()
    }

    /// The topology after the whole timeline has been applied to `base`,
    /// with the swap fallback for inapplicable mutations (the same
    /// semantics every dynamic driver uses).
    pub fn final_topology(&self, base: &Topology) -> Topology {
        let mut topo = base.clone();
        for sm in &self.items {
            topo = topo.apply_or_fallback(&sm.mutation).0;
        }
        topo
    }
}

impl FromIterator<ScheduledMutation> for MutationSchedule {
    fn from_iter<I: IntoIterator<Item = ScheduledMutation>>(iter: I) -> Self {
        let mut s = MutationSchedule::new();
        for sm in iter {
            s.push(sm.tick, sm.mutation);
        }
        s
    }
}

/// Why a mutation could not be applied to a particular topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationError {
    /// No candidate edit of this kind yields a valid, strongly-connected
    /// network (e.g. dropping a wire from a directed ring).
    NoCandidate {
        /// The kind that had no candidate.
        kind: MutationKind,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::NoCandidate { kind } => write!(
                f,
                "no {kind} candidate keeps the network valid and strongly connected"
            ),
        }
    }
}

impl std::error::Error for MutationError {}

/// Rebuild a topology from an edge list; `None` if the wiring is invalid
/// or the result is not strongly connected.
fn rebuild(n: usize, delta: u8, edges: &[Edge]) -> Option<Topology> {
    let mut b = TopologyBuilder::new(n, delta);
    for e in edges {
        b.connect(e.src, e.src_port, e.dst, e.dst_port).ok()?;
    }
    let t = b.build().ok()?;
    algo::is_strongly_connected(&t).then_some(t)
}

fn free_out_port(topo: &Topology, node: NodeId) -> Option<Port> {
    topo.out_connected(node)
        .iter()
        .position(|&c| !c)
        .map(|o| Port(o as u8))
}

fn free_in_port(topo: &Topology, node: NodeId) -> Option<Port> {
    topo.in_connected(node)
        .iter()
        .position(|&c| !c)
        .map(|i| Port(i as u8))
}

impl Topology {
    /// Apply one mutation, returning the new topology. The candidate scan
    /// starts at the mutation's selector and settles on the first edit
    /// whose result satisfies the model (δ bound, ≥ 1 in-/out-port per
    /// processor, no self-loops) *and* stays strongly connected —
    /// deterministic for a given `(topology, mutation)` pair.
    pub fn apply(&self, m: &TopologyMutation) -> Result<Topology, MutationError> {
        let n = self.num_nodes();
        let delta = self.delta();
        let no_candidate = MutationError::NoCandidate { kind: m.kind };
        match m.kind {
            MutationKind::DropEdge => {
                let edges = self.sorted_edges();
                let e = edges.len();
                for k in 0..e {
                    let skip = ((m.selector % e as u64) as usize + k) % e;
                    let rest: Vec<Edge> = edges
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &e)| e)
                        .collect();
                    if let Some(t) = rebuild(n, delta, &rest) {
                        return Ok(t);
                    }
                }
                Err(no_candidate)
            }
            MutationKind::AddEdge => {
                let total = n * n;
                let start = (m.selector % total as u64) as usize;
                for k in 0..total {
                    let idx = (start + k) % total;
                    let (u, v) = (NodeId((idx / n) as u32), NodeId((idx % n) as u32));
                    if u == v {
                        continue;
                    }
                    let (Some(o), Some(i)) = (free_out_port(self, u), free_in_port(self, v)) else {
                        continue;
                    };
                    let mut edges = self.sorted_edges();
                    edges.push(Edge {
                        src: u,
                        src_port: o,
                        dst: v,
                        dst_port: i,
                    });
                    if let Some(t) = rebuild(n, delta, &edges) {
                        return Ok(t);
                    }
                }
                Err(no_candidate)
            }
            MutationKind::RewirePort => {
                // Exchange the heads of two wires: e1 = u1→v1, e2 = u2→v2
                // become u1→v2 and u2→v1 (same in-ports). Degrees are
                // preserved, so this works even on port-saturated networks
                // (e.g. `random-sc` at its δ target) where no in-port is
                // free for a one-sided re-route.
                let edges = self.sorted_edges();
                let e = edges.len();
                for k1 in 0..e {
                    let i1 = ((m.selector % e as u64) as usize + k1) % e;
                    let e1 = edges[i1];
                    for k2 in 1..e {
                        let i2 = (i1 + k2) % e;
                        let e2 = edges[i2];
                        if e1.src == e2.dst || e2.src == e1.dst {
                            continue; // the exchange would create a self-loop
                        }
                        let mut new_edges = edges.clone();
                        new_edges[i1] = Edge {
                            src: e1.src,
                            src_port: e1.src_port,
                            dst: e2.dst,
                            dst_port: e2.dst_port,
                        };
                        new_edges[i2] = Edge {
                            src: e2.src,
                            src_port: e2.src_port,
                            dst: e1.dst,
                            dst_port: e1.dst_port,
                        };
                        if let Some(t) = rebuild(n, delta, &new_edges) {
                            return Ok(t);
                        }
                    }
                }
                Err(no_candidate)
            }
            MutationKind::SwapLabels => {
                let a = (m.selector % n as u64) as usize;
                let b = (a + 1 + ((m.selector / n as u64) % (n as u64 - 1)) as usize) % n;
                let relabel = |x: NodeId| -> NodeId {
                    if x.idx() == a {
                        NodeId(b as u32)
                    } else if x.idx() == b {
                        NodeId(a as u32)
                    } else {
                        x
                    }
                };
                let edges: Vec<Edge> = self
                    .sorted_edges()
                    .into_iter()
                    .map(|e| Edge {
                        src: relabel(e.src),
                        src_port: e.src_port,
                        dst: relabel(e.dst),
                        dst_port: e.dst_port,
                    })
                    .collect();
                // A relabelling is an isomorphism: always valid.
                rebuild(n, delta, &edges).ok_or(no_candidate)
            }
        }
    }

    /// Apply `m`, degrading to [`MutationKind::SwapLabels`] (with the
    /// same selector) when no candidate of the requested kind exists, so
    /// a scheduled network event always happens. Returns the new topology
    /// and the kind that was actually applied.
    pub fn apply_or_fallback(&self, m: &TopologyMutation) -> (Topology, MutationKind) {
        match self.apply(m) {
            Ok(t) => (t, m.kind),
            Err(MutationError::NoCandidate { .. }) => {
                let swap = TopologyMutation {
                    kind: MutationKind::SwapLabels,
                    selector: m.selector,
                };
                let t = self
                    .apply(&swap)
                    .expect("label swap applies to any valid network");
                (t, MutationKind::SwapLabels)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn mutation(kind: MutationKind, selector: u64) -> TopologyMutation {
        TopologyMutation { kind, selector }
    }

    #[test]
    fn drop_edge_keeps_validity_and_connectivity() {
        let topo = generators::random_sc(24, 3, 7);
        for sel in 0..8u64 {
            let t = topo.apply(&mutation(MutationKind::DropEdge, sel)).unwrap();
            assert_eq!(t.num_edges(), topo.num_edges() - 1);
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn drop_edge_on_a_ring_has_no_candidate() {
        // every wire of a directed ring is a bridge
        let topo = generators::ring(8);
        assert_eq!(
            topo.apply(&mutation(MutationKind::DropEdge, 3)),
            Err(MutationError::NoCandidate {
                kind: MutationKind::DropEdge
            })
        );
        // ...but the fallback still produces a changed, valid network
        let (t, applied) = topo.apply_or_fallback(&mutation(MutationKind::DropEdge, 3));
        assert_eq!(applied, MutationKind::SwapLabels);
        assert_ne!(t, topo);
        t.validate().unwrap();
        assert!(algo::is_strongly_connected(&t));
    }

    #[test]
    fn add_edge_adds_exactly_one_wire() {
        let topo = generators::ring(8); // delta 2, one port used per side
        for sel in [0u64, 5, 63] {
            let t = topo.apply(&mutation(MutationKind::AddEdge, sel)).unwrap();
            assert_eq!(t.num_edges(), topo.num_edges() + 1);
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn add_edge_on_a_saturated_network_has_no_candidate() {
        // complete_bidi uses every port of every node
        let topo = generators::complete_bidi(4);
        assert_eq!(
            topo.apply(&mutation(MutationKind::AddEdge, 1)),
            Err(MutationError::NoCandidate {
                kind: MutationKind::AddEdge
            })
        );
    }

    #[test]
    fn rewire_preserves_edge_count_and_connectivity() {
        let topo = generators::random_sc(20, 3, 9);
        for sel in 0..6u64 {
            let t = topo
                .apply(&mutation(MutationKind::RewirePort, sel))
                .unwrap();
            assert_eq!(t.num_edges(), topo.num_edges());
            assert_ne!(t, topo, "rewire must move a wire");
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn swap_is_an_isomorphic_relabelling() {
        let topo = generators::random_sc(16, 3, 2);
        let t = topo
            .apply(&mutation(MutationKind::SwapLabels, 12345))
            .unwrap();
        assert_eq!(t.num_edges(), topo.num_edges());
        assert_eq!(t.num_nodes(), topo.num_nodes());
        t.validate().unwrap();
        assert!(algo::is_strongly_connected(&t));
        // applying the same swap twice undoes it
        let back = t.apply(&mutation(MutationKind::SwapLabels, 12345)).unwrap();
        assert_eq!(back, topo);
    }

    #[test]
    fn mutations_are_deterministic() {
        let topo = generators::random_sc(18, 3, 4);
        for kind in MutationKind::ALL {
            let a = topo.apply_or_fallback(&mutation(kind, 7)).0;
            let b = topo.apply_or_fallback(&mutation(kind, 7)).0;
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn schedule_sorts_by_tick_stably() {
        let mut s = MutationSchedule::new();
        s.push(900, mutation(MutationKind::RewirePort, 5));
        s.push(200, mutation(MutationKind::RewirePort, 2));
        s.push(900, mutation(MutationKind::DropEdge, 1));
        let ticks: Vec<u64> = s.iter().map(|m| m.tick).collect();
        assert_eq!(ticks, vec![200, 900, 900]);
        // same-tick entries keep insertion order
        assert_eq!(s.items()[1].mutation.kind, MutationKind::RewirePort);
        assert_eq!(s.items()[2].mutation.kind, MutationKind::DropEdge);
    }

    #[test]
    fn suffix_grammar_round_trips() {
        for text in ["drop-edge=3@t500", "rewire=2@t200", "swap=0@t0"] {
            let sm: ScheduledMutation = text.parse().unwrap();
            assert_eq!(sm.to_string(), text);
        }
        let sm = ScheduledMutation::parse_suffix(" add-edge = 4 @ t 17 ").unwrap();
        assert_eq!(sm.to_string(), "add-edge=4@t17");
    }

    #[test]
    fn suffix_errors_are_structured_and_carry_the_tick() {
        use MutationSuffixError::*;
        let cases: [(&str, Option<u64>, MutationSuffixError); 6] = [
            ("", None, Empty),
            ("drop-edge=3", None, MissingTick),
            (
                "drop-edge=3@500",
                None,
                BadTick {
                    value: "500".into(),
                },
            ),
            (
                "warp=1@t5",
                Some(5),
                UnknownKind {
                    kind: "warp".into(),
                },
            ),
            ("drop-edge@t5", Some(5), MissingSelector),
            ("drop-edge=x@t5", Some(5), BadSelector { value: "x".into() }),
        ];
        for (text, tick, reason) in cases {
            assert_eq!(
                ScheduledMutation::parse_suffix(text),
                Err((tick, reason.clone())),
                "{text:?}"
            );
        }
    }

    #[test]
    fn final_topology_folds_the_whole_timeline() {
        let base = generators::random_sc(16, 3, 5);
        let schedule = MutationSchedule::new()
            .with(100, mutation(MutationKind::DropEdge, 1))
            .with(300, mutation(MutationKind::AddEdge, 2));
        let end = schedule.final_topology(&base);
        let step1 = base
            .apply_or_fallback(&mutation(MutationKind::DropEdge, 1))
            .0;
        let step2 = step1
            .apply_or_fallback(&mutation(MutationKind::AddEdge, 2))
            .0;
        assert_eq!(end, step2);
        end.validate().unwrap();
    }
}
