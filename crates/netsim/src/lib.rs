//! # gtd-netsim
//!
//! Substrate for reproducing Goldstein's *Determination of the Topology of a
//! Directed Network* (IPPS 2002): a simulator for strongly-connected directed
//! networks of identical synchronous finite-state automata.
//!
//! The crate provides three things:
//!
//! 1. **Topologies** ([`Topology`], [`TopologyBuilder`]) — port-labelled
//!    directed multigraphs. Every edge is a unidirectional wire from a
//!    numbered *out-port* of one processor to a numbered *in-port* of
//!    another, exactly matching the paper's network model (§1.1). Port
//!    counts are uniformly bounded by a network constant δ ≥ 2.
//!    Workload families come either as imperative [`generators`] calls or
//!    as declarative, parse/render round-trippable [`TopologySpec`] values
//!    (`"ring:64"`, `"random-sc:n=512,delta=3,seed=7"`, …) backed by the
//!    same generators — see [`spec`] for the grammar and the registry.
//! 2. **Graph algorithms** ([`algo`]) — strong-connectivity, BFS layers,
//!    exact diameters, and the *canonical* breadth-first trees that the
//!    paper's growing snakes carve (first arrival wins, ties broken by the
//!    lowest-numbered in-port). These are used as ground truth against
//!    which protocol behaviour is verified.
//! 3. **The lockstep engine** ([`engine`]) — a synchronous simulator in
//!    which, on every global clock tick, each automaton reads one
//!    constant-size character per in-port, performs a state change, and
//!    writes one character per out-port. Three execution strategies are
//!    provided (dense, sparse/event-driven, and sharded-parallel over a
//!    persistent worker pool) which are observationally identical;
//!    equivalence is enforced by tests.
//!
//! Nothing in this crate knows about snakes or the GTD protocol; it is the
//! "hardware" on which `gtd-snake` and `gtd-core` run.
//!
//! ```
//! use gtd_netsim::{algo, generators, NodeId, Port, TopologyBuilder};
//!
//! // Wire a network by hand…
//! let mut b = TopologyBuilder::new(3, 2);
//! b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
//! b.connect(NodeId(1), Port(0), NodeId(2), Port(0)).unwrap();
//! b.connect(NodeId(2), Port(0), NodeId(0), Port(0)).unwrap();
//! let triangle = b.build().unwrap();
//! assert!(algo::is_strongly_connected(&triangle));
//!
//! // …or generate one, and query the ground truth the protocol is
//! // verified against.
//! let topo = generators::random_sc(24, 3, 7);
//! assert!(algo::is_strongly_connected(&topo));
//! let paths = algo::canonical_path(&topo, NodeId(0), NodeId(5)).unwrap();
//! assert_eq!(paths.len() as u32, algo::bfs_dist(&topo, NodeId(0))[5]);
//! ```
//!
//! The simulator is library substrate for long fault-injection runs, so
//! the crate warns on `unwrap`/`expect`: every keep is a structural
//! invariant with a local `#[allow]` naming why it cannot fire.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod algo;
pub mod engine;
pub mod generators;
pub mod ids;
pub mod mutation;
mod pool;
pub mod rng;
pub mod spec;
pub mod topology;

pub use engine::{Automaton, Engine, EngineMode, FaultPlane, NodeMeta, StepCtx};
pub use ids::{Endpoint, NodeId, Port, PortMask};
pub use mutation::{
    burst_r_parts, burst_r_selector, restart_victim, AppliedMutation, MembershipChange,
    MutationError, MutationKind, MutationSchedule, MutationSpec, MutationSuffixError,
    ScheduledMutation, TopologyMutation, MUTATION_REGISTRY,
};
pub use spec::{
    DynamicSpec, FamilySpec, FaultKnobSpec, ParamSpec, ParseSpecError, TopologySpec, FAULT_REGISTRY,
};
pub use topology::{Edge, Topology, TopologyBuilder, TopologyError, MAX_DELTA};
