//! Port-labelled directed multigraphs — the paper's network model (§1.1).
//!
//! A network is formed "by connecting out-ports from processors to the
//! in-ports of other processors with wires". Each wire is unidirectional and
//! carries one constant-size character per tick. A pair of processors may be
//! connected by two wires in opposite directions (a simulated bidirectional
//! link) or by several parallel wires; a processor is never wired to itself
//! (self-loops carry no information in the model and the paper never uses
//! them — see DESIGN.md §5).

use crate::ids::{Endpoint, NodeId, Port};

/// A single wire: out-port `src_port` of `src` feeds in-port `dst_port` of `dst`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// Sending processor.
    pub src: NodeId,
    /// Out-port on the sender.
    pub src_port: Port,
    /// Receiving processor.
    pub dst: NodeId,
    /// In-port on the receiver.
    pub dst_port: Port,
}

/// Errors raised while constructing a topology.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// A referenced node does not exist.
    UnknownNode(NodeId),
    /// A port number is ≥ δ.
    PortOutOfRange { node: NodeId, port: Port, delta: u8 },
    /// The out-port (or in-port) is already wired.
    PortBusy {
        node: NodeId,
        port: Port,
        is_out: bool,
    },
    /// Self-loops are rejected (DESIGN.md §5).
    SelfLoop(NodeId),
    /// All ports on this side of the node are already wired.
    NodeFull { node: NodeId, is_out: bool },
    /// The finished network violates the model: a node lacks a connected
    /// in-port or out-port, or there are fewer than two processors.
    Malformed(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::PortOutOfRange { node, port, delta } => {
                write!(f, "port {port} on {node} out of range (delta = {delta})")
            }
            TopologyError::PortBusy { node, port, is_out } => {
                let side = if *is_out { "out" } else { "in" };
                write!(f, "{side}-port {port} on {node} already wired")
            }
            TopologyError::SelfLoop(n) => write!(f, "self-loop on {n} rejected"),
            TopologyError::NodeFull { node, is_out } => {
                let side = if *is_out { "out" } else { "in" };
                write!(f, "all {side}-ports of {node} are wired")
            }
            TopologyError::Malformed(msg) => write!(f, "malformed network: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Per-node wiring table.
#[derive(Clone, PartialEq, Eq, Debug)]
struct NodeWiring {
    /// `outs[o]` = remote `(node, in-port)` fed by our out-port `o`.
    outs: Vec<Option<Endpoint>>,
    /// `ins[i]` = remote `(node, out-port)` feeding our in-port `i`.
    ins: Vec<Option<Endpoint>>,
}

/// An immutable, validated network topology.
///
/// Construct one through [`TopologyBuilder`] or the generators in
/// [`crate::generators`]. Validation guarantees: at least two processors,
/// every processor has ≥ 1 connected in-port and ≥ 1 connected out-port
/// (required by the model, §1.1), no self-loops, and all port numbers < δ.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    delta: u8,
    nodes: Vec<NodeWiring>,
}

impl Topology {
    /// The network constant δ: the uniform bound on in- and out-degree.
    #[inline]
    pub fn delta(&self) -> u8 {
        self.delta
    }

    /// Number of processors N.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of wires E.
    pub fn num_edges(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.outs.iter().flatten().count())
            .sum()
    }

    /// Iterate over all node ids `0..N`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The remote endpoint fed by `node`'s out-port `port`, if wired.
    #[inline]
    pub fn out_endpoint(&self, node: NodeId, port: Port) -> Option<Endpoint> {
        self.nodes[node.idx()]
            .outs
            .get(port.idx())
            .copied()
            .flatten()
    }

    /// The remote endpoint feeding `node`'s in-port `port`, if wired.
    #[inline]
    pub fn in_endpoint(&self, node: NodeId, port: Port) -> Option<Endpoint> {
        self.nodes[node.idx()]
            .ins
            .get(port.idx())
            .copied()
            .flatten()
    }

    /// Out-port connectivity mask of a node (out-port awareness, §1.2.1).
    pub fn out_connected(&self, node: NodeId) -> Vec<bool> {
        self.nodes[node.idx()]
            .outs
            .iter()
            .map(Option::is_some)
            .collect()
    }

    /// In-port connectivity mask of a node (in-port awareness, §1.2.1).
    pub fn in_connected(&self, node: NodeId) -> Vec<bool> {
        self.nodes[node.idx()]
            .ins
            .iter()
            .map(Option::is_some)
            .collect()
    }

    /// Connected out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes[node.idx()].outs.iter().flatten().count()
    }

    /// Connected in-degree of a node.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes[node.idx()].ins.iter().flatten().count()
    }

    /// Out-neighbours of a node as `(out-port, remote endpoint)` pairs, in
    /// ascending port order.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (Port, Endpoint)> + '_ {
        self.nodes[node.idx()]
            .outs
            .iter()
            .enumerate()
            .filter_map(|(o, ep)| ep.map(|ep| (Port(o as u8), ep)))
    }

    /// In-neighbours of a node as `(in-port, remote endpoint)` pairs, in
    /// ascending port order.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (Port, Endpoint)> + '_ {
        self.nodes[node.idx()]
            .ins
            .iter()
            .enumerate()
            .filter_map(|(i, ep)| ep.map(|ep| (Port(i as u8), ep)))
    }

    /// Every wire in the network, in `(src node, src port)` order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges());
        for src in self.node_ids() {
            for (src_port, ep) in self.out_edges(src) {
                out.push(Edge {
                    src,
                    src_port,
                    dst: ep.node,
                    dst_port: ep.port,
                });
            }
        }
        out
    }

    /// The edge set as a sorted vector — the canonical form used to compare a
    /// reconstructed map against ground truth.
    pub fn sorted_edges(&self) -> Vec<Edge> {
        let mut e = self.edges();
        e.sort_unstable();
        e
    }

    /// Follow a sequence of out-ports starting from `from`. Returns the node
    /// reached, or `None` if some port on the walk is unwired.
    ///
    /// This is how the master computer's canonical names (root→A port paths)
    /// are resolved back to ground-truth processors during verification.
    pub fn walk_out_ports(&self, from: NodeId, ports: &[Port]) -> Option<NodeId> {
        let mut cur = from;
        for &p in ports {
            cur = self.out_endpoint(cur, p)?.node;
        }
        Some(cur)
    }

    /// Validate the cross-linking invariants; used by tests and after
    /// deserialization. Checks that out- and in-tables mirror each other and
    /// that model requirements hold.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.nodes.len() < 2 {
            return Err(TopologyError::Malformed(
                "the model requires at least two processors".into(),
            ));
        }
        for node in self.node_ids() {
            let w = &self.nodes[node.idx()];
            if w.outs.len() > self.delta as usize || w.ins.len() > self.delta as usize {
                return Err(TopologyError::Malformed(format!(
                    "{node} has more than delta = {} ports",
                    self.delta
                )));
            }
            for (o, ep) in self.out_edges(node) {
                if ep.node == node {
                    return Err(TopologyError::SelfLoop(node));
                }
                let back = self.in_endpoint(ep.node, ep.port);
                if back != Some(Endpoint::new(node, o)) {
                    return Err(TopologyError::Malformed(format!(
                        "wire {node}:{o} -> {ep} not mirrored ({back:?})"
                    )));
                }
            }
            for (i, ep) in self.in_edges(node) {
                let fwd = self.out_endpoint(ep.node, ep.port);
                if fwd != Some(Endpoint::new(node, i)) {
                    return Err(TopologyError::Malformed(format!(
                        "wire {ep} -> {node}:{i} not mirrored ({fwd:?})"
                    )));
                }
            }
            if self.out_degree(node) == 0 {
                return Err(TopologyError::Malformed(format!(
                    "{node} has no connected out-port"
                )));
            }
            if self.in_degree(node) == 0 {
                return Err(TopologyError::Malformed(format!(
                    "{node} has no connected in-port"
                )));
            }
        }
        Ok(())
    }
}

/// Incremental constructor for [`Topology`].
///
/// Port numbers can be chosen explicitly ([`TopologyBuilder::connect`]) or
/// auto-assigned to the lowest free ports ([`TopologyBuilder::connect_auto`]),
/// which keeps generator output deterministic in edge-insertion order.
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    delta: u8,
    nodes: Vec<NodeWiring>,
}

impl TopologyBuilder {
    /// Start a network with `n` processors and port bound `delta` (δ ≥ 2,
    /// as in the paper).
    pub fn new(n: usize, delta: u8) -> Self {
        assert!(delta >= 2, "the paper requires delta >= 2");
        assert!(n >= 2, "the model requires at least two processors");
        TopologyBuilder {
            delta,
            nodes: vec![
                NodeWiring {
                    outs: vec![None; delta as usize],
                    ins: vec![None; delta as usize],
                };
                n
            ],
        }
    }

    /// δ of the network under construction.
    pub fn delta(&self) -> u8 {
        self.delta
    }

    /// Number of processors.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.idx() >= self.nodes.len() {
            Err(TopologyError::UnknownNode(n))
        } else {
            Ok(())
        }
    }

    /// Wire out-port `src_port` of `src` to in-port `dst_port` of `dst`.
    pub fn connect(
        &mut self,
        src: NodeId,
        src_port: Port,
        dst: NodeId,
        dst_port: Port,
    ) -> Result<(), TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        if src_port.idx() >= self.delta as usize {
            return Err(TopologyError::PortOutOfRange {
                node: src,
                port: src_port,
                delta: self.delta,
            });
        }
        if dst_port.idx() >= self.delta as usize {
            return Err(TopologyError::PortOutOfRange {
                node: dst,
                port: dst_port,
                delta: self.delta,
            });
        }
        if self.nodes[src.idx()].outs[src_port.idx()].is_some() {
            return Err(TopologyError::PortBusy {
                node: src,
                port: src_port,
                is_out: true,
            });
        }
        if self.nodes[dst.idx()].ins[dst_port.idx()].is_some() {
            return Err(TopologyError::PortBusy {
                node: dst,
                port: dst_port,
                is_out: false,
            });
        }
        self.nodes[src.idx()].outs[src_port.idx()] = Some(Endpoint::new(dst, dst_port));
        self.nodes[dst.idx()].ins[dst_port.idx()] = Some(Endpoint::new(src, src_port));
        Ok(())
    }

    /// Wire `src` to `dst` using the lowest free out-port on `src` and the
    /// lowest free in-port on `dst`. Returns the chosen `(out, in)` ports.
    pub fn connect_auto(
        &mut self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<(Port, Port), TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        let o = self.nodes[src.idx()]
            .outs
            .iter()
            .position(Option::is_none)
            .ok_or(TopologyError::NodeFull {
                node: src,
                is_out: true,
            })?;
        let i = self.nodes[dst.idx()]
            .ins
            .iter()
            .position(Option::is_none)
            .ok_or(TopologyError::NodeFull {
                node: dst,
                is_out: false,
            })?;
        let (o, i) = (Port(o as u8), Port(i as u8));
        self.connect(src, o, dst, i)?;
        Ok((o, i))
    }

    /// True if `src` has a free out-port and `dst` a free in-port.
    pub fn can_connect(&self, src: NodeId, dst: NodeId) -> bool {
        src != dst
            && src.idx() < self.nodes.len()
            && dst.idx() < self.nodes.len()
            && self.nodes[src.idx()].outs.iter().any(Option::is_none)
            && self.nodes[dst.idx()].ins.iter().any(Option::is_none)
    }

    /// True if some wire `src → dst` already exists (any port pair).
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.nodes[src.idx()]
            .outs
            .iter()
            .flatten()
            .any(|ep| ep.node == dst)
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let t = Topology {
            delta: self.delta,
            nodes: self.nodes,
        };
        t.validate()?;
        Ok(t)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;

    fn two_cycle() -> Topology {
        let mut b = TopologyBuilder::new(2, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(0), Port(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn minimal_two_cycle_builds() {
        let t = two_cycle();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(
            t.out_endpoint(NodeId(0), Port(0)),
            Some(Endpoint::new(NodeId(1), Port(0)))
        );
        assert_eq!(
            t.in_endpoint(NodeId(0), Port(0)),
            Some(Endpoint::new(NodeId(1), Port(0)))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new(2, 2);
        assert_eq!(
            b.connect(NodeId(0), Port(0), NodeId(0), Port(1)),
            Err(TopologyError::SelfLoop(NodeId(0)))
        );
        assert_eq!(
            b.connect_auto(NodeId(1), NodeId(1)),
            Err(TopologyError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn busy_port_rejected() {
        let mut b = TopologyBuilder::new(3, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        assert_eq!(
            b.connect(NodeId(0), Port(0), NodeId(2), Port(0)),
            Err(TopologyError::PortBusy {
                node: NodeId(0),
                port: Port(0),
                is_out: true
            })
        );
        assert_eq!(
            b.connect(NodeId(2), Port(0), NodeId(1), Port(0)),
            Err(TopologyError::PortBusy {
                node: NodeId(1),
                port: Port(0),
                is_out: false
            })
        );
    }

    #[test]
    fn port_out_of_range_rejected() {
        let mut b = TopologyBuilder::new(2, 2);
        assert!(matches!(
            b.connect(NodeId(0), Port(2), NodeId(1), Port(0)),
            Err(TopologyError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = TopologyBuilder::new(2, 2);
        assert_eq!(
            b.connect(NodeId(5), Port(0), NodeId(1), Port(0)),
            Err(TopologyError::UnknownNode(NodeId(5)))
        );
    }

    #[test]
    fn node_without_in_port_fails_validation() {
        let mut b = TopologyBuilder::new(3, 2);
        // n2 gets an out-edge but no in-edge.
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(0), Port(0)).unwrap();
        b.connect(NodeId(2), Port(0), NodeId(0), Port(1)).unwrap();
        assert!(matches!(b.build(), Err(TopologyError::Malformed(_))));
    }

    #[test]
    fn connect_auto_picks_lowest_free_ports() {
        let mut b = TopologyBuilder::new(3, 3);
        assert_eq!(
            b.connect_auto(NodeId(0), NodeId(1)).unwrap(),
            (Port(0), Port(0))
        );
        assert_eq!(
            b.connect_auto(NodeId(0), NodeId(1)).unwrap(),
            (Port(1), Port(1))
        );
        assert_eq!(
            b.connect_auto(NodeId(2), NodeId(1)).unwrap(),
            (Port(0), Port(2))
        );
        // n1 is now full on the in-side.
        assert_eq!(
            b.connect_auto(NodeId(2), NodeId(1)),
            Err(TopologyError::NodeFull {
                node: NodeId(1),
                is_out: false
            })
        );
    }

    #[test]
    fn parallel_edges_supported() {
        let mut b = TopologyBuilder::new(2, 2);
        b.connect_auto(NodeId(0), NodeId(1)).unwrap();
        b.connect_auto(NodeId(0), NodeId(1)).unwrap();
        b.connect_auto(NodeId(1), NodeId(0)).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.out_degree(NodeId(0)), 2);
        assert_eq!(t.in_degree(NodeId(1)), 2);
    }

    #[test]
    fn edges_listing_sorted_and_mirrored() {
        let t = two_cycle();
        let e = t.sorted_edges();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].src, NodeId(0));
        assert_eq!(e[1].src, NodeId(1));
        t.validate().unwrap();
    }

    #[test]
    fn walk_out_ports_follows_wires() {
        let t = two_cycle();
        assert_eq!(t.walk_out_ports(NodeId(0), &[Port(0)]), Some(NodeId(1)));
        assert_eq!(
            t.walk_out_ports(NodeId(0), &[Port(0), Port(0)]),
            Some(NodeId(0))
        );
        assert_eq!(t.walk_out_ports(NodeId(0), &[Port(1)]), None);
        assert_eq!(t.walk_out_ports(NodeId(0), &[]), Some(NodeId(0)));
    }

    #[test]
    fn clone_roundtrip_validates() {
        // Rebuilding from the edge list reproduces an identical, valid
        // topology (the structural analogue of a serialization roundtrip).
        let t = two_cycle();
        let mut b = TopologyBuilder::new(t.num_nodes(), t.delta());
        for e in t.edges() {
            b.connect(e.src, e.src_port, e.dst, e.dst_port).unwrap();
        }
        let t2 = b.build().unwrap();
        assert_eq!(t, t2);
        t2.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "delta >= 2")]
    fn delta_below_two_panics() {
        let _ = TopologyBuilder::new(2, 1);
    }

    #[test]
    #[should_panic(expected = "two processors")]
    fn single_node_panics() {
        let _ = TopologyBuilder::new(1, 2);
    }
}
