//! Port-labelled directed multigraphs — the paper's network model (§1.1).
//!
//! A network is formed "by connecting out-ports from processors to the
//! in-ports of other processors with wires". Each wire is unidirectional and
//! carries one constant-size character per tick. A pair of processors may be
//! connected by two wires in opposite directions (a simulated bidirectional
//! link) or by several parallel wires; a processor is never wired to itself
//! (self-loops carry no information in the model and the paper never uses
//! them — see DESIGN.md §5).
//!
//! ## Storage
//!
//! A finished [`Topology`] is stored in compressed-sparse-row form: one
//! `offsets` array per direction (length N+1) plus one packed entry per
//! wire end. Node `v`'s wired out-ports live at
//! `out_adj[out_off[v] .. out_off[v+1]]`, sorted by local port number.
//! Entries are 8 bytes each, so a δ=3 network costs ~56 bytes/node — flat,
//! cache-friendly, and free of the per-node `Vec` headers and heap blocks
//! the million-node regimes cannot afford. The query API below exposes thin
//! views (iterators and O(1) lookups) over these arrays; nothing allocates.

use crate::ids::{Endpoint, NodeId, Port, PortMask};

/// Largest supported port bound δ. Connectivity masks are single 64-bit
/// words ([`PortMask`]); the paper's δ is a small constant, so this is not
/// a practical restriction.
pub const MAX_DELTA: u8 = 64;

/// A single wire: out-port `src_port` of `src` feeds in-port `dst_port` of `dst`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// Sending processor.
    pub src: NodeId,
    /// Out-port on the sender.
    pub src_port: Port,
    /// Receiving processor.
    pub dst: NodeId,
    /// In-port on the receiver.
    pub dst_port: Port,
}

/// Errors raised while constructing a topology.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// A referenced node does not exist.
    UnknownNode(NodeId),
    /// A port number is ≥ δ.
    PortOutOfRange { node: NodeId, port: Port, delta: u8 },
    /// The out-port (or in-port) is already wired.
    PortBusy {
        node: NodeId,
        port: Port,
        is_out: bool,
    },
    /// Self-loops are rejected (DESIGN.md §5).
    SelfLoop(NodeId),
    /// All ports on this side of the node are already wired.
    NodeFull { node: NodeId, is_out: bool },
    /// The finished network violates the model: a node lacks a connected
    /// in-port or out-port, or there are fewer than two processors.
    Malformed(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::PortOutOfRange { node, port, delta } => {
                write!(f, "port {port} on {node} out of range (delta = {delta})")
            }
            TopologyError::PortBusy { node, port, is_out } => {
                let side = if *is_out { "out" } else { "in" };
                write!(f, "{side}-port {port} on {node} already wired")
            }
            TopologyError::SelfLoop(n) => write!(f, "self-loop on {n} rejected"),
            TopologyError::NodeFull { node, is_out } => {
                let side = if *is_out { "out" } else { "in" };
                write!(f, "all {side}-ports of {node} are wired")
            }
            TopologyError::Malformed(msg) => write!(f, "malformed network: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// One wired port in a CSR adjacency row: the local port number plus the
/// packed remote endpoint. 8 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CsrEntry {
    /// Local port number (out-port in `out_adj`, in-port in `in_adj`).
    local: u8,
    /// Remote port number on `peer`.
    peer_port: u8,
    /// Remote processor.
    peer: u32,
}

impl CsrEntry {
    #[inline]
    fn endpoint(self) -> Endpoint {
        Endpoint::new(NodeId(self.peer), Port(self.peer_port))
    }
}

/// An immutable, validated network topology.
///
/// Construct one through [`TopologyBuilder`] or the generators in
/// [`crate::generators`]. Validation guarantees: at least two processors,
/// every processor has ≥ 1 connected in-port and ≥ 1 connected out-port
/// (required by the model, §1.1), no self-loops, and all port numbers < δ.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    delta: u8,
    n: u32,
    /// CSR offsets: node `v`'s wired out-ports are `out_adj[out_off[v] ..
    /// out_off[v+1]]`, ascending by port. Length N+1.
    out_off: Vec<u32>,
    out_adj: Vec<CsrEntry>,
    /// Mirror of the out-tables for the in-direction. Length N+1.
    in_off: Vec<u32>,
    in_adj: Vec<CsrEntry>,
}

impl Topology {
    /// The network constant δ: the uniform bound on in- and out-degree.
    #[inline]
    pub fn delta(&self) -> u8 {
        self.delta
    }

    /// Number of processors N.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n as usize
    }

    /// Number of wires E.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_adj.len()
    }

    /// Iterate over all node ids `0..N`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// The CSR row of wired out-ports for `node`.
    #[inline]
    fn out_row(&self, node: NodeId) -> &[CsrEntry] {
        &self.out_adj[self.out_off[node.idx()] as usize..self.out_off[node.idx() + 1] as usize]
    }

    /// The CSR row of wired in-ports for `node`.
    #[inline]
    fn in_row(&self, node: NodeId) -> &[CsrEntry] {
        &self.in_adj[self.in_off[node.idx()] as usize..self.in_off[node.idx() + 1] as usize]
    }

    /// The remote endpoint fed by `node`'s out-port `port`, if wired.
    ///
    /// Rows are sorted by port and at most δ long, so a linear scan is
    /// both correct and faster than a binary search at the paper's δ.
    #[inline]
    pub fn out_endpoint(&self, node: NodeId, port: Port) -> Option<Endpoint> {
        self.out_row(node)
            .iter()
            .find(|e| e.local == port.0)
            .map(|e| e.endpoint())
    }

    /// The remote endpoint feeding `node`'s in-port `port`, if wired.
    #[inline]
    pub fn in_endpoint(&self, node: NodeId, port: Port) -> Option<Endpoint> {
        self.in_row(node)
            .iter()
            .find(|e| e.local == port.0)
            .map(|e| e.endpoint())
    }

    /// Out-port connectivity of a node as a bitmask (out-port awareness,
    /// §1.2.1). Bit `o` set ⇔ out-port `o` is wired.
    #[inline]
    pub fn out_mask(&self, node: NodeId) -> PortMask {
        self.out_row(node)
            .iter()
            .fold(PortMask::EMPTY, |m, e| m.with(Port(e.local)))
    }

    /// In-port connectivity of a node as a bitmask (in-port awareness, §1.2.1).
    #[inline]
    pub fn in_mask(&self, node: NodeId) -> PortMask {
        self.in_row(node)
            .iter()
            .fold(PortMask::EMPTY, |m, e| m.with(Port(e.local)))
    }

    /// Out-port connectivity flags of a node, one `bool` per port `0..δ`,
    /// without allocating (borrows the CSR row).
    pub fn out_connected(&self, node: NodeId) -> impl Iterator<Item = bool> + '_ {
        let m = self.out_mask(node);
        (0..self.delta).map(move |p| m.contains(Port(p)))
    }

    /// In-port connectivity flags of a node, one `bool` per port `0..δ`,
    /// without allocating (borrows the CSR row).
    pub fn in_connected(&self, node: NodeId) -> impl Iterator<Item = bool> + '_ {
        let m = self.in_mask(node);
        (0..self.delta).map(move |p| m.contains(Port(p)))
    }

    /// Connected out-degree of a node.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_row(node).len()
    }

    /// Connected in-degree of a node.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_row(node).len()
    }

    /// Out-neighbours of a node as `(out-port, remote endpoint)` pairs, in
    /// ascending port order.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (Port, Endpoint)> + '_ {
        self.out_row(node)
            .iter()
            .map(|e| (Port(e.local), e.endpoint()))
    }

    /// In-neighbours of a node as `(in-port, remote endpoint)` pairs, in
    /// ascending port order.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (Port, Endpoint)> + '_ {
        self.in_row(node)
            .iter()
            .map(|e| (Port(e.local), e.endpoint()))
    }

    /// Every wire in the network, in `(src node, src port)` order, as a
    /// non-allocating view over the CSR arrays.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.node_ids().flat_map(move |src| {
            self.out_edges(src).map(move |(src_port, ep)| Edge {
                src,
                src_port,
                dst: ep.node,
                dst_port: ep.port,
            })
        })
    }

    /// The edge set as a sorted vector — the canonical form used to compare a
    /// reconstructed map against ground truth.
    pub fn sorted_edges(&self) -> Vec<Edge> {
        let mut e: Vec<Edge> = self.edges().collect();
        e.sort_unstable();
        e
    }

    /// Follow a sequence of out-ports starting from `from`. Returns the node
    /// reached, or `None` if some port on the walk is unwired.
    ///
    /// This is how the master computer's canonical names (root→A port paths)
    /// are resolved back to ground-truth processors during verification.
    pub fn walk_out_ports(&self, from: NodeId, ports: &[Port]) -> Option<NodeId> {
        let mut cur = from;
        for &p in ports {
            cur = self.out_endpoint(cur, p)?.node;
        }
        Some(cur)
    }

    /// Validate the cross-linking invariants; used by tests and after
    /// deserialization. Checks that out- and in-tables mirror each other and
    /// that model requirements hold.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.n < 2 {
            return Err(TopologyError::Malformed(
                "the model requires at least two processors".into(),
            ));
        }
        for node in self.node_ids() {
            if self.out_degree(node) > self.delta as usize
                || self.in_degree(node) > self.delta as usize
            {
                return Err(TopologyError::Malformed(format!(
                    "{node} has more than delta = {} ports",
                    self.delta
                )));
            }
            for (o, ep) in self.out_edges(node) {
                if ep.node == node {
                    return Err(TopologyError::SelfLoop(node));
                }
                let back = self.in_endpoint(ep.node, ep.port);
                if back != Some(Endpoint::new(node, o)) {
                    return Err(TopologyError::Malformed(format!(
                        "wire {node}:{o} -> {ep} not mirrored ({back:?})"
                    )));
                }
            }
            for (i, ep) in self.in_edges(node) {
                let fwd = self.out_endpoint(ep.node, ep.port);
                if fwd != Some(Endpoint::new(node, i)) {
                    return Err(TopologyError::Malformed(format!(
                        "wire {ep} -> {node}:{i} not mirrored ({fwd:?})"
                    )));
                }
            }
            if self.out_degree(node) == 0 {
                return Err(TopologyError::Malformed(format!(
                    "{node} has no connected out-port"
                )));
            }
            if self.in_degree(node) == 0 {
                return Err(TopologyError::Malformed(format!(
                    "{node} has no connected in-port"
                )));
            }
        }
        Ok(())
    }
}

/// Incremental constructor for [`Topology`].
///
/// Port numbers can be chosen explicitly ([`TopologyBuilder::connect`]) or
/// auto-assigned to the lowest free ports ([`TopologyBuilder::connect_auto`]),
/// which keeps generator output deterministic in edge-insertion order.
///
/// Internally the builder keeps two flat `n·δ` slot tables (`slot = node·δ +
/// port`) and compresses them to the CSR form of [`Topology`] at
/// [`TopologyBuilder::build`].
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    delta: u8,
    n: usize,
    /// `outs[v·δ + o]` = remote `(node, in-port)` fed by `v`'s out-port `o`.
    outs: Vec<Option<Endpoint>>,
    /// `ins[v·δ + i]` = remote `(node, out-port)` feeding `v`'s in-port `i`.
    ins: Vec<Option<Endpoint>>,
}

impl TopologyBuilder {
    /// Start a network with `n` processors and port bound `delta` (δ ≥ 2,
    /// as in the paper).
    ///
    /// Panics when `n·δ` does not fit in 32 bits: the engine's flat route
    /// tables index wire slots with `u32` (one value reserved as the
    /// unrouted sentinel), and silently truncating node ids there would
    /// corrupt the wiring. Spec-driven construction rejects such sizes
    /// earlier with a structured parse error.
    pub fn new(n: usize, delta: u8) -> Self {
        assert!(delta >= 2, "the paper requires delta >= 2");
        assert!(
            delta <= MAX_DELTA,
            "delta must be <= {MAX_DELTA} (connectivity masks are 64-bit)"
        );
        assert!(n >= 2, "the model requires at least two processors");
        assert!(
            n.checked_mul(delta as usize)
                .is_some_and(|slots| slots < u32::MAX as usize),
            "network too large: n * delta must fit in 32 bits"
        );
        TopologyBuilder {
            delta,
            n,
            outs: vec![None; n * delta as usize],
            ins: vec![None; n * delta as usize],
        }
    }

    /// δ of the network under construction.
    pub fn delta(&self) -> u8 {
        self.delta
    }

    /// Number of processors.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn slot(&self, node: NodeId, port: Port) -> usize {
        node.idx() * self.delta as usize + port.idx()
    }

    #[inline]
    fn slots(&self, node: NodeId) -> std::ops::Range<usize> {
        let base = node.idx() * self.delta as usize;
        base..base + self.delta as usize
    }

    fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.idx() >= self.n {
            Err(TopologyError::UnknownNode(n))
        } else {
            Ok(())
        }
    }

    /// Wire out-port `src_port` of `src` to in-port `dst_port` of `dst`.
    pub fn connect(
        &mut self,
        src: NodeId,
        src_port: Port,
        dst: NodeId,
        dst_port: Port,
    ) -> Result<(), TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        if src_port.idx() >= self.delta as usize {
            return Err(TopologyError::PortOutOfRange {
                node: src,
                port: src_port,
                delta: self.delta,
            });
        }
        if dst_port.idx() >= self.delta as usize {
            return Err(TopologyError::PortOutOfRange {
                node: dst,
                port: dst_port,
                delta: self.delta,
            });
        }
        if self.outs[self.slot(src, src_port)].is_some() {
            return Err(TopologyError::PortBusy {
                node: src,
                port: src_port,
                is_out: true,
            });
        }
        if self.ins[self.slot(dst, dst_port)].is_some() {
            return Err(TopologyError::PortBusy {
                node: dst,
                port: dst_port,
                is_out: false,
            });
        }
        let (so, si) = (self.slot(src, src_port), self.slot(dst, dst_port));
        self.outs[so] = Some(Endpoint::new(dst, dst_port));
        self.ins[si] = Some(Endpoint::new(src, src_port));
        Ok(())
    }

    /// Wire `src` to `dst` using the lowest free out-port on `src` and the
    /// lowest free in-port on `dst`. Returns the chosen `(out, in)` ports.
    pub fn connect_auto(
        &mut self,
        src: NodeId,
        dst: NodeId,
    ) -> Result<(Port, Port), TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        let o = self.outs[self.slots(src)]
            .iter()
            .position(Option::is_none)
            .ok_or(TopologyError::NodeFull {
                node: src,
                is_out: true,
            })?;
        let i = self.ins[self.slots(dst)]
            .iter()
            .position(Option::is_none)
            .ok_or(TopologyError::NodeFull {
                node: dst,
                is_out: false,
            })?;
        let (o, i) = (Port(o as u8), Port(i as u8));
        self.connect(src, o, dst, i)?;
        Ok((o, i))
    }

    /// True if `src` has a free out-port and `dst` a free in-port.
    pub fn can_connect(&self, src: NodeId, dst: NodeId) -> bool {
        src != dst
            && src.idx() < self.n
            && dst.idx() < self.n
            && self.outs[self.slots(src)].iter().any(Option::is_none)
            && self.ins[self.slots(dst)].iter().any(Option::is_none)
    }

    /// True if some wire `src → dst` already exists (any port pair).
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.outs[self.slots(src)]
            .iter()
            .flatten()
            .any(|ep| ep.node == dst)
    }

    /// Finish and validate: compress the slot tables to CSR form.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let delta = self.delta as usize;
        let pack = |slots: &[Option<Endpoint>]| {
            let mut off = Vec::with_capacity(self.n + 1);
            let mut adj = Vec::with_capacity(slots.iter().flatten().count());
            off.push(0u32);
            for node in 0..self.n {
                for port in 0..delta {
                    if let Some(ep) = slots[node * delta + port] {
                        adj.push(CsrEntry {
                            local: port as u8,
                            peer_port: ep.port.0,
                            peer: ep.node.0,
                        });
                    }
                }
                off.push(adj.len() as u32);
            }
            (off, adj)
        };
        let (out_off, out_adj) = pack(&self.outs);
        let (in_off, in_adj) = pack(&self.ins);
        let t = Topology {
            delta: self.delta,
            n: self.n as u32,
            out_off,
            out_adj,
            in_off,
            in_adj,
        };
        t.validate()?;
        Ok(t)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;

    fn two_cycle() -> Topology {
        let mut b = TopologyBuilder::new(2, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(0), Port(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn minimal_two_cycle_builds() {
        let t = two_cycle();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(
            t.out_endpoint(NodeId(0), Port(0)),
            Some(Endpoint::new(NodeId(1), Port(0)))
        );
        assert_eq!(
            t.in_endpoint(NodeId(0), Port(0)),
            Some(Endpoint::new(NodeId(1), Port(0)))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new(2, 2);
        assert_eq!(
            b.connect(NodeId(0), Port(0), NodeId(0), Port(1)),
            Err(TopologyError::SelfLoop(NodeId(0)))
        );
        assert_eq!(
            b.connect_auto(NodeId(1), NodeId(1)),
            Err(TopologyError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn busy_port_rejected() {
        let mut b = TopologyBuilder::new(3, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        assert_eq!(
            b.connect(NodeId(0), Port(0), NodeId(2), Port(0)),
            Err(TopologyError::PortBusy {
                node: NodeId(0),
                port: Port(0),
                is_out: true
            })
        );
        assert_eq!(
            b.connect(NodeId(2), Port(0), NodeId(1), Port(0)),
            Err(TopologyError::PortBusy {
                node: NodeId(1),
                port: Port(0),
                is_out: false
            })
        );
    }

    #[test]
    fn port_out_of_range_rejected() {
        let mut b = TopologyBuilder::new(2, 2);
        assert!(matches!(
            b.connect(NodeId(0), Port(2), NodeId(1), Port(0)),
            Err(TopologyError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = TopologyBuilder::new(2, 2);
        assert_eq!(
            b.connect(NodeId(5), Port(0), NodeId(1), Port(0)),
            Err(TopologyError::UnknownNode(NodeId(5)))
        );
    }

    #[test]
    fn node_without_in_port_fails_validation() {
        let mut b = TopologyBuilder::new(3, 2);
        // n2 gets an out-edge but no in-edge.
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(0), Port(0)).unwrap();
        b.connect(NodeId(2), Port(0), NodeId(0), Port(1)).unwrap();
        assert!(matches!(b.build(), Err(TopologyError::Malformed(_))));
    }

    #[test]
    fn connect_auto_picks_lowest_free_ports() {
        let mut b = TopologyBuilder::new(3, 3);
        assert_eq!(
            b.connect_auto(NodeId(0), NodeId(1)).unwrap(),
            (Port(0), Port(0))
        );
        assert_eq!(
            b.connect_auto(NodeId(0), NodeId(1)).unwrap(),
            (Port(1), Port(1))
        );
        assert_eq!(
            b.connect_auto(NodeId(2), NodeId(1)).unwrap(),
            (Port(0), Port(2))
        );
        // n1 is now full on the in-side.
        assert_eq!(
            b.connect_auto(NodeId(2), NodeId(1)),
            Err(TopologyError::NodeFull {
                node: NodeId(1),
                is_out: false
            })
        );
    }

    #[test]
    fn parallel_edges_supported() {
        let mut b = TopologyBuilder::new(2, 2);
        b.connect_auto(NodeId(0), NodeId(1)).unwrap();
        b.connect_auto(NodeId(0), NodeId(1)).unwrap();
        b.connect_auto(NodeId(1), NodeId(0)).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.out_degree(NodeId(0)), 2);
        assert_eq!(t.in_degree(NodeId(1)), 2);
    }

    #[test]
    fn edges_listing_sorted_and_mirrored() {
        let t = two_cycle();
        let e = t.sorted_edges();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].src, NodeId(0));
        assert_eq!(e[1].src, NodeId(1));
        t.validate().unwrap();
    }

    #[test]
    fn connectivity_views_match_wiring() {
        let mut b = TopologyBuilder::new(2, 3);
        b.connect(NodeId(0), Port(2), NodeId(1), Port(1)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(0), Port(0)).unwrap();
        let t = b.build().unwrap();
        assert_eq!(
            t.out_connected(NodeId(0)).collect::<Vec<_>>(),
            vec![false, false, true]
        );
        assert_eq!(
            t.in_connected(NodeId(1)).collect::<Vec<_>>(),
            vec![false, true, false]
        );
        assert_eq!(t.out_mask(NodeId(0)).iter().collect::<Vec<_>>(), [Port(2)]);
        assert_eq!(t.in_mask(NodeId(0)).iter().collect::<Vec<_>>(), [Port(0)]);
    }

    #[test]
    fn walk_out_ports_follows_wires() {
        let t = two_cycle();
        assert_eq!(t.walk_out_ports(NodeId(0), &[Port(0)]), Some(NodeId(1)));
        assert_eq!(
            t.walk_out_ports(NodeId(0), &[Port(0), Port(0)]),
            Some(NodeId(0))
        );
        assert_eq!(t.walk_out_ports(NodeId(0), &[Port(1)]), None);
        assert_eq!(t.walk_out_ports(NodeId(0), &[]), Some(NodeId(0)));
    }

    #[test]
    fn clone_roundtrip_validates() {
        // Rebuilding from the edge list reproduces an identical, valid
        // topology (the structural analogue of a serialization roundtrip).
        let t = two_cycle();
        let mut b = TopologyBuilder::new(t.num_nodes(), t.delta());
        for e in t.edges() {
            b.connect(e.src, e.src_port, e.dst, e.dst_port).unwrap();
        }
        let t2 = b.build().unwrap();
        assert_eq!(t, t2);
        t2.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "delta >= 2")]
    fn delta_below_two_panics() {
        let _ = TopologyBuilder::new(2, 1);
    }

    #[test]
    #[should_panic(expected = "two processors")]
    fn single_node_panics() {
        let _ = TopologyBuilder::new(1, 2);
    }

    #[test]
    #[should_panic(expected = "fit in 32 bits")]
    fn oversized_network_panics() {
        let _ = TopologyBuilder::new(u32::MAX as usize, 2);
    }
}
