//! A small deterministic PRNG for the workload generators.
//!
//! The generators only need reproducible pseudo-randomness — identical
//! arguments (including seeds) must produce identical port-level
//! topologies on every platform — not cryptographic or statistical
//! perfection. This splitmix64-based generator is self-contained, so the
//! workspace builds without the `rand` crate (offline environments; see
//! `third_party/README.md`).

use std::ops::Range;

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seed the generator. Identical seeds yield identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `range` (modulo method: the tiny bias is
    /// irrelevant for topology generation).
    pub fn random_range(&mut self, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as u32
    }

    /// `true` with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        // 53 random mantissa bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(3..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = DetRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
