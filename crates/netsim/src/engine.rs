//! The synchronous lockstep engine (paper §1.1).
//!
//! "Processors synchronously, within a single global clock pulse, perform
//! the following actions in order: read in the inputs from each of their
//! in-ports, process their individual state changes, and prepare and
//! broadcast their outputs."
//!
//! [`Engine::tick`] implements exactly that: every automaton reads the
//! signals that were written onto its in-wires at the end of the previous
//! tick, steps, and writes signals onto its out-wires for the next tick.
//! Wires are double-buffered so all automata observe one consistent
//! snapshot regardless of step order.
//!
//! Three observationally-equivalent execution strategies are provided
//! (equivalence is enforced by tests and measured by experiment E8):
//!
//! * [`EngineMode::Dense`] — step every automaton every tick. The obvious
//!   reference implementation.
//! * [`EngineMode::Sparse`] — event-driven: only step automata that asked to
//!   be re-stepped or that received a non-blank signal. Protocol activity is
//!   usually localized, so this is the workhorse for large runs. Correctness
//!   relies on the *quiescence contract* documented on [`Automaton`].
//! * [`EngineMode::Parallel`] — dense stepping fanned out over scoped OS
//!   threads. The synchronous model is embarrassingly data-parallel
//!   within a tick; this mode wins when floods keep most of the network
//!   active at once. Networks below [`PAR_MIN_NODES`] fall back to the
//!   sequential dense path (observationally identical by construction),
//!   since per-tick thread dispatch would dwarf the work.

use crate::ids::{NodeId, Port};
use crate::mutation::MembershipChange;
use crate::topology::Topology;

/// Static facts a processor knows about itself at power-on: which of its
/// ports are wired (in-/out-port awareness, §1.2.1) and whether it is the
/// root. The simulator-side `id` is provided **for tracing only** — protocol
/// logic must never branch on it (the paper's processors are anonymous).
#[derive(Clone, Debug)]
pub struct NodeMeta {
    /// Simulator-side identity. Tracing/diagnostics only.
    pub id: NodeId,
    /// True for the distinguished root processor.
    pub is_root: bool,
    /// `in_connected[i]` — is in-port `i` wired?
    pub in_connected: Vec<bool>,
    /// `out_connected[o]` — is out-port `o` wired?
    pub out_connected: Vec<bool>,
    /// The network constant δ.
    pub delta: u8,
}

/// Everything an automaton sees during one clock pulse.
pub struct StepCtx<'a, S, E> {
    /// The current global tick (first step happens at tick 0).
    pub tick: u64,
    /// One signal per in-port, indexed by in-port number. Unwired ports
    /// always read blank.
    pub inputs: &'a [S],
    /// One signal per out-port, indexed by out-port number; pre-blanked.
    /// Writing to an unwired port is allowed and discarded.
    pub outputs: &'a mut [S],
    /// Transcript events (only the root uses this in the GTD protocol, but
    /// the engine supports any node emitting).
    pub events: &'a mut Vec<E>,
    restep: &'a mut bool,
}

impl<S, E> StepCtx<'_, S, E> {
    /// Ask to be stepped on the next tick even if no input arrives (used for
    /// internal timers such as speed-1 dwell counters).
    #[inline]
    pub fn request_restep(&mut self) {
        *self.restep = true;
    }

    /// Convenience: the input on in-port `p`.
    #[inline]
    pub fn input(&self, p: Port) -> &S {
        &self.inputs[p.idx()]
    }
}

/// A synchronous finite-state processor.
///
/// **Quiescence contract** (required by [`EngineMode::Sparse`]): if an
/// automaton did not call [`StepCtx::request_restep`] on its previous step
/// (or has never been stepped) and all its inputs are blank, then stepping
/// it must not change its state and must emit only blank outputs. The
/// engine exploits this by skipping such steps entirely; the dense/sparse
/// equivalence tests in this crate and downstream enforce the contract.
pub trait Automaton: Send {
    /// The wire alphabet — one constant-size character per wire per tick.
    /// `Default` is the blank character b of the paper.
    type Sig: Clone + Default + PartialEq + Send + Sync;
    /// Transcript event type (what the root pipes to its master computer).
    type Event: Send;

    /// One global clock pulse: read inputs, change state, write outputs.
    fn step(&mut self, ctx: &mut StepCtx<'_, Self::Sig, Self::Event>);

    /// The network was rewired around this processor
    /// ([`Engine::apply_topology`]): `meta` carries the new port
    /// connectivity masks (§1.2.1 port awareness tracks the physical
    /// wiring). Called between ticks, only on processors whose masks
    /// changed; the default ignores the event.
    fn on_rewire(&mut self, meta: &NodeMeta) {
        let _ = meta;
    }

    /// This processor was spliced into a *running* network
    /// ([`Engine::apply_topology_with`] with a
    /// [`MembershipChange::Joined`]): called once on the freshly built
    /// automaton, between ticks, before its first step. `meta` is the
    /// same power-on view the factory received; the newcomer is also
    /// scheduled for a step, so it powers on at the next tick in every
    /// engine mode. The default ignores the event.
    fn on_join(&mut self, meta: &NodeMeta) {
        let _ = meta;
    }
}

/// Execution strategy. See module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineMode {
    /// Step every node every tick, sequentially.
    Dense,
    /// Step only woken nodes (event-driven), sequentially.
    Sparse,
    /// Step every node every tick, fanned out over scoped threads.
    Parallel,
}

impl EngineMode {
    /// Every mode, in canonical order (CLI listings, campaign grids).
    pub const ALL: [EngineMode; 3] = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel];

    /// Stable lowercase name (round-trips through [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Dense => "dense",
            EngineMode::Sparse => "sparse",
            EngineMode::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        EngineMode::ALL
            .into_iter()
            .find(|m| m.name() == s.trim())
            .ok_or_else(|| format!("unknown engine mode {s:?} (known: dense, sparse, parallel)"))
    }
}

const NO_ROUTE: u32 = u32::MAX;

/// Below this node count [`EngineMode::Parallel`] runs the sequential
/// dense path: spawning threads every tick costs more than the tick.
pub const PAR_MIN_NODES: usize = 512;

/// Worker count for the parallel mode: all available cores, but at least
/// ~256 nodes of work per worker.
fn par_workers(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    cores.clamp(1, n.div_ceil(256).max(1))
}

/// The lockstep simulator. Generic over the automaton type so the same
/// engine runs the GTD protocol, unit-test probes, and ablation automata.
pub struct Engine<A: Automaton> {
    mode: EngineMode,
    delta: usize,
    root: NodeId,
    tick: u64,
    nodes: Vec<A>,
    /// `in_buf[n*δ + i]` — signal visible on in-port `i` of node `n` this tick.
    in_buf: Vec<A::Sig>,
    /// `out_buf[n*δ + o]` — signal written on out-port `o` of node `n`.
    out_buf: Vec<A::Sig>,
    /// For each in-slot, the out-slot feeding it (dense/parallel gather).
    route_in: Vec<u32>,
    /// For each out-slot, the in-slot it feeds (sparse scatter).
    route_out: Vec<u32>,
    /// Nodes that asked to be re-stepped.
    want_step: Vec<bool>,
    /// Nodes that received a non-blank input for the coming tick.
    has_input: Vec<bool>,
    /// Per-node event buffers (kept separate for parallel stepping).
    event_bufs: Vec<Vec<A::Event>>,
    /// Scratch: which nodes were stepped this tick (sparse bookkeeping).
    stepped: Vec<u32>,
}

impl<A: Automaton> Engine<A> {
    /// Build an engine over `topo`, constructing one automaton per node via
    /// `factory`. Node 0 is the root by convention (callers that want a
    /// different root relabel their topology).
    pub fn new(topo: &Topology, mode: EngineMode, mut factory: impl FnMut(NodeMeta) -> A) -> Self {
        Self::with_root(topo, mode, NodeId(0), &mut factory)
    }

    /// Like [`Engine::new`] but with an explicit root processor.
    pub fn with_root(
        topo: &Topology,
        mode: EngineMode,
        root: NodeId,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) -> Self {
        assert!(root.idx() < topo.num_nodes(), "root must exist");
        let n = topo.num_nodes();
        let delta = topo.delta() as usize;
        let mut nodes = Vec::with_capacity(n);
        for id in topo.node_ids() {
            nodes.push(factory(NodeMeta {
                id,
                is_root: id == root,
                in_connected: topo.in_connected(id),
                out_connected: topo.out_connected(id),
                delta: topo.delta(),
            }));
        }
        let mut route_in = vec![NO_ROUTE; n * delta];
        let mut route_out = vec![NO_ROUTE; n * delta];
        for u in topo.node_ids() {
            for (o, ep) in topo.out_edges(u) {
                let out_slot = u.idx() * delta + o.idx();
                let in_slot = ep.node.idx() * delta + ep.port.idx();
                route_out[out_slot] = in_slot as u32;
                route_in[in_slot] = out_slot as u32;
            }
        }
        Engine {
            mode,
            delta,
            root,
            tick: 0,
            nodes,
            in_buf: vec![A::Sig::default(); n * delta],
            out_buf: vec![A::Sig::default(); n * delta],
            route_in,
            route_out,
            // Every node must be stepped at least once so initiators (the
            // root) can start protocols without external input.
            want_step: vec![true; n],
            has_input: vec![false; n],
            event_bufs: (0..n).map(|_| Vec::new()).collect(),
            stepped: Vec::new(),
        }
    }

    /// Number of automata.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global ticks elapsed.
    #[inline]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Immutable view of an automaton (invariant checks, tracing).
    #[inline]
    pub fn node(&self, n: NodeId) -> &A {
        &self.nodes[n.idx()]
    }

    /// Immutable view of all automata.
    #[inline]
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Mutable access to one automaton — the "outside source" of the paper
    /// nudging a processor (e.g. the master computer restarting the root
    /// for a re-map). The node is also scheduled for a step so the nudge
    /// takes effect even in sparse mode.
    pub fn node_mut(&mut self, n: NodeId) -> &mut A {
        self.want_step[n.idx()] = true;
        &mut self.nodes[n.idx()]
    }

    /// Atomically rewire the running network to `new_topo` between ticks
    /// — the live half of a topology mutation (paper §1: "the topology …
    /// might change").
    ///
    /// * Route tables are rebuilt from the new wiring.
    /// * In-flight signals are invalidated on every wire that was removed
    ///   or re-sourced: a character already delivered for the coming tick
    ///   survives only if the identical wire (same out-slot → same
    ///   in-slot) still exists.
    /// * Every automaton whose port connectivity changed receives
    ///   [`Automaton::on_rewire`] with its new [`NodeMeta`] and is
    ///   scheduled for a step, so all three engine modes observe the
    ///   mutation on the same tick and stay observationally identical.
    ///
    /// The processor count must be preserved (δ always is); for membership
    /// changes use [`Engine::apply_topology_with`].
    pub fn apply_topology(&mut self, new_topo: &Topology) {
        assert_eq!(
            new_topo.num_nodes(),
            self.nodes.len(),
            "apply_topology preserves the node count (use apply_topology_with)"
        );
        self.apply_topology_with(new_topo, MembershipChange::None, &mut |_| {
            unreachable!("no processor joins without a membership change")
        });
    }

    /// [`Engine::apply_topology`] generalized to membership changes: the
    /// running network is atomically rewired to `new_topo` between ticks
    /// while a processor joins or leaves.
    ///
    /// * [`MembershipChange::Joined`] — `factory` builds the newcomer's
    ///   automaton from its power-on [`NodeMeta`]; it then receives
    ///   [`Automaton::on_join`] and is scheduled, so it powers on at the
    ///   next tick identically in all three engine modes.
    /// * [`MembershipChange::Left`] — the departed automaton is removed
    ///   (its in-flight signals and pending inputs with it) and every
    ///   higher processor id shifts down by one, mirroring
    ///   [`MembershipChange::relabel`]. The engine's root must survive
    ///   (session drivers guarantee it: the collector's host never
    ///   leaves); its id is re-tracked automatically.
    ///
    /// In-flight characters survive exactly on wires that connect the same
    /// *physical* processors through the same ports on both sides of the
    /// change; everything else is invalidated, as for a plain rewire.
    pub fn apply_topology_with(
        &mut self,
        new_topo: &Topology,
        change: MembershipChange,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) {
        let old_n = self.nodes.len();
        let delta = self.delta;
        assert_eq!(
            new_topo.delta() as usize,
            delta,
            "mutations preserve the port bound"
        );
        let new_n = new_topo.num_nodes();
        // new-id → old-id of the same physical processor (None: newcomer).
        let inv: Vec<Option<usize>> = match change {
            MembershipChange::None => {
                assert_eq!(new_n, old_n, "membership change says the count is fixed");
                (0..old_n).map(Some).collect()
            }
            MembershipChange::Joined { node } => {
                assert_eq!(new_n, old_n + 1, "a join grows the network by one");
                assert_eq!(node.idx(), old_n, "the newcomer takes the highest id");
                (0..new_n).map(|i| (i < old_n).then_some(i)).collect()
            }
            MembershipChange::Left { node } => {
                assert_eq!(new_n, old_n - 1, "a leave shrinks the network by one");
                let x = node.idx();
                assert!(x < old_n, "departed processor must exist");
                assert_ne!(x, self.root.idx(), "the root cannot leave");
                (0..new_n)
                    .map(|i| Some(if i < x { i } else { i + 1 }))
                    .collect()
            }
        };
        let mut route_in = vec![NO_ROUTE; new_n * delta];
        let mut route_out = vec![NO_ROUTE; new_n * delta];
        for u in new_topo.node_ids() {
            for (o, ep) in new_topo.out_edges(u) {
                let out_slot = u.idx() * delta + o.idx();
                let in_slot = ep.node.idx() * delta + ep.port.idx();
                route_out[out_slot] = in_slot as u32;
                route_in[in_slot] = out_slot as u32;
            }
        }
        // Carry in-flight characters across wires that connect the same
        // physical processors through the same ports; every removed or
        // re-sourced wire loses its character.
        let blank = A::Sig::default();
        let mut in_buf = vec![A::Sig::default(); new_n * delta];
        for (slot, dst) in in_buf.iter_mut().enumerate() {
            let r = route_in[slot];
            if r == NO_ROUTE {
                continue;
            }
            let (Some(old_dst), Some(old_src)) = (inv[slot / delta], inv[r as usize / delta])
            else {
                continue; // a wire touching the newcomer carries nothing yet
            };
            let old_in_slot = old_dst * delta + slot % delta;
            let old_out_slot = (old_src * delta + r as usize % delta) as u32;
            if self.route_in[old_in_slot] == old_out_slot && self.in_buf[old_in_slot] != blank {
                *dst = std::mem::take(&mut self.in_buf[old_in_slot]);
            }
        }
        // Splice the automaton tables into the new indexing.
        match change {
            MembershipChange::None => {}
            MembershipChange::Joined { node } => {
                let meta = NodeMeta {
                    id: node,
                    is_root: false,
                    in_connected: new_topo.in_connected(node),
                    out_connected: new_topo.out_connected(node),
                    delta: new_topo.delta(),
                };
                let mut automaton = factory(meta.clone());
                automaton.on_join(&meta);
                self.nodes.push(automaton);
                self.event_bufs.push(Vec::new());
            }
            MembershipChange::Left { node } => {
                let x = node.idx();
                self.nodes.remove(x);
                self.event_bufs.remove(x);
                if self.root.idx() > x {
                    self.root = NodeId(self.root.0 - 1);
                }
            }
        }
        let mut want_step = vec![false; new_n];
        for (new_id, want) in want_step.iter_mut().enumerate() {
            match inv[new_id] {
                Some(old_id) => *want = self.want_step[old_id],
                None => *want = true, // the newcomer's power-on step
            }
        }
        let mut has_input = vec![false; new_n];
        for (has, chunk) in has_input.iter_mut().zip(in_buf.chunks(delta)) {
            *has = chunk.iter().any(|s| *s != blank);
        }
        // Notify surviving processors whose port awareness changed and
        // schedule them so sparse mode steps them exactly when dense would.
        for (new_id, &old) in inv.iter().enumerate() {
            let Some(old_id) = old else { continue };
            let changed = (0..delta).any(|p| {
                let (old_slot, new_slot) = (old_id * delta + p, new_id * delta + p);
                (self.route_out[old_slot] == NO_ROUTE) != (route_out[new_slot] == NO_ROUTE)
                    || (self.route_in[old_slot] == NO_ROUTE) != (route_in[new_slot] == NO_ROUTE)
            });
            if changed {
                let id = NodeId(new_id as u32);
                self.nodes[new_id].on_rewire(&NodeMeta {
                    id,
                    is_root: id == self.root,
                    in_connected: new_topo.in_connected(id),
                    out_connected: new_topo.out_connected(id),
                    delta: new_topo.delta(),
                });
                want_step[new_id] = true;
            }
        }
        self.route_in = route_in;
        self.route_out = route_out;
        self.in_buf = in_buf;
        self.out_buf = vec![A::Sig::default(); new_n * delta];
        self.want_step = want_step;
        self.has_input = has_input;
        self.stepped.clear();
    }

    /// True when nothing is pending: no node wants a re-step and no
    /// non-blank signal is in flight. A quiet network stays quiet forever.
    pub fn is_quiet(&self) -> bool {
        !self.want_step.iter().any(|&w| w) && !self.has_input.iter().any(|&h| h)
    }

    /// Census of non-blank signals currently in flight (delivered for the
    /// coming tick). Used by the Lemma 4.2 cleanliness experiments.
    pub fn signals_in_flight(&self) -> usize {
        let blank = A::Sig::default();
        self.in_buf.iter().filter(|s| **s != blank).count()
    }

    /// Fast-forward a quiet network by `ticks` clock pulses. A quiet
    /// network stays quiet (the quiescence contract makes every step a
    /// no-op), so only the clock advances — this lets dynamic timelines
    /// idle to a far-future mutation tick in O(1). Panics if the network
    /// is not quiet.
    pub fn skip_quiet_ticks(&mut self, ticks: u64) {
        assert!(self.is_quiet(), "can only skip ticks on a quiet network");
        self.tick += ticks;
    }

    /// Advance one global clock tick. Events emitted by nodes are appended
    /// to `events` in ascending node order (deterministic across modes).
    pub fn tick(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        match self.mode {
            EngineMode::Dense => self.tick_dense(events, false),
            EngineMode::Parallel => self.tick_dense(events, true),
            EngineMode::Sparse => self.tick_sparse(events),
        }
        self.tick += 1;
    }

    /// Run until `stop` returns true for some emitted event, or until the
    /// network goes quiet, or until `max_ticks` elapse. Returns all events
    /// emitted and whether `stop` fired.
    pub fn run_until(
        &mut self,
        max_ticks: u64,
        mut stop: impl FnMut(&(NodeId, A::Event)) -> bool,
    ) -> (Vec<(NodeId, A::Event)>, bool) {
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        for _ in 0..max_ticks {
            scratch.clear();
            self.tick(&mut scratch);
            let mut fired = false;
            for ev in scratch.drain(..) {
                if stop(&ev) {
                    fired = true;
                }
                all.push(ev);
            }
            if fired {
                return (all, true);
            }
            if self.is_quiet() {
                break;
            }
        }
        (all, false)
    }

    fn tick_dense(&mut self, events: &mut Vec<(NodeId, A::Event)>, parallel: bool) {
        let n = self.nodes.len();
        let delta = self.delta;
        let tick = self.tick;
        let parallel = parallel && n >= PAR_MIN_NODES;
        // Phase 1: step everyone against the in_buf snapshot.
        let in_buf = &self.in_buf;
        let step_one = |idx: usize,
                        node: &mut A,
                        out_chunk: &mut [A::Sig],
                        evs: &mut Vec<A::Event>,
                        want: &mut bool| {
            for s in out_chunk.iter_mut() {
                *s = A::Sig::default();
            }
            let mut restep = false;
            let mut ctx = StepCtx {
                tick,
                inputs: &in_buf[idx * delta..(idx + 1) * delta],
                outputs: out_chunk,
                events: evs,
                restep: &mut restep,
            };
            node.step(&mut ctx);
            *want = restep;
        };
        if parallel {
            // Fan contiguous node ranges out over scoped threads: each
            // worker owns disjoint slices of every per-node table, while
            // all share the immutable in_buf snapshot.
            let per = n.div_ceil(par_workers(n));
            std::thread::scope(|scope| {
                let mut nodes = self.nodes.as_mut_slice();
                let mut outs = self.out_buf.as_mut_slice();
                let mut evs = self.event_bufs.as_mut_slice();
                let mut wants = self.want_step.as_mut_slice();
                let mut base = 0usize;
                let step_one = &step_one;
                while !nodes.is_empty() {
                    let take = per.min(nodes.len());
                    let (node_c, node_rest) = nodes.split_at_mut(take);
                    let (out_c, out_rest) = outs.split_at_mut(take * delta);
                    let (ev_c, ev_rest) = evs.split_at_mut(take);
                    let (want_c, want_rest) = wants.split_at_mut(take);
                    scope.spawn(move || {
                        for (j, ((node, evbuf), want)) in node_c
                            .iter_mut()
                            .zip(ev_c.iter_mut())
                            .zip(want_c.iter_mut())
                            .enumerate()
                        {
                            step_one(
                                base + j,
                                node,
                                &mut out_c[j * delta..(j + 1) * delta],
                                evbuf,
                                want,
                            );
                        }
                    });
                    nodes = node_rest;
                    outs = out_rest;
                    evs = ev_rest;
                    wants = want_rest;
                    base += take;
                }
            });
        } else {
            for (idx, ((node, out_chunk), (evs, want))) in self
                .nodes
                .iter_mut()
                .zip(self.out_buf.chunks_mut(delta))
                .zip(self.event_bufs.iter_mut().zip(self.want_step.iter_mut()))
                .enumerate()
            {
                step_one(idx, node, out_chunk, evs, want);
            }
        }
        // Phase 2: gather — route every wired out-slot to its in-slot.
        let out_buf = &self.out_buf;
        let route_in = &self.route_in;
        let blank = A::Sig::default();
        let gather_one = |in_slot: usize, dst: &mut A::Sig, has: &mut bool| {
            let r = route_in[in_slot];
            if r == NO_ROUTE {
                if *dst != blank {
                    *dst = A::Sig::default();
                }
            } else {
                *dst = out_buf[r as usize].clone();
                if *dst != blank {
                    *has = true;
                }
            }
        };
        if parallel {
            let per = n.div_ceil(par_workers(n));
            std::thread::scope(|scope| {
                let mut ins = self.in_buf.as_mut_slice();
                let mut has = self.has_input.as_mut_slice();
                let mut base = 0usize;
                let gather_one = &gather_one;
                while !ins.is_empty() {
                    let take = (per * delta).min(ins.len());
                    let (in_c, in_rest) = ins.split_at_mut(take);
                    let (has_c, has_rest) = has.split_at_mut(take / delta);
                    scope.spawn(move || {
                        for (k, (chunk, h)) in
                            in_c.chunks_mut(delta).zip(has_c.iter_mut()).enumerate()
                        {
                            *h = false;
                            for (i, dst) in chunk.iter_mut().enumerate() {
                                gather_one((base + k) * delta + i, dst, h);
                            }
                        }
                    });
                    ins = in_rest;
                    has = has_rest;
                    base += take / delta;
                }
            });
        } else {
            for (nid, (chunk, has)) in self
                .in_buf
                .chunks_mut(delta)
                .zip(self.has_input.iter_mut())
                .enumerate()
            {
                *has = false;
                for (i, dst) in chunk.iter_mut().enumerate() {
                    gather_one(nid * delta + i, dst, has);
                }
            }
        }
        // Phase 3: drain events in node order.
        for (n, buf) in self.event_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                events.extend(buf.drain(..).map(|e| (NodeId(n as u32), e)));
            }
        }
    }

    fn tick_sparse(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        let delta = self.delta;
        let tick = self.tick;
        let blank = A::Sig::default();
        // Phase 1: collect the step list.
        self.stepped.clear();
        for n in 0..self.nodes.len() {
            if self.want_step[n] || self.has_input[n] {
                self.stepped.push(n as u32);
            }
        }
        // Phase 2: step them. out_buf is all-blank between ticks (invariant),
        // so stepped nodes write into clean slices.
        for &n in &self.stepped {
            let n = n as usize;
            let mut restep = false;
            let mut ctx = StepCtx {
                tick,
                inputs: &self.in_buf[n * delta..(n + 1) * delta],
                outputs: &mut self.out_buf[n * delta..(n + 1) * delta],
                events: &mut self.event_bufs[n],
                restep: &mut restep,
            };
            self.nodes[n].step(&mut ctx);
            self.want_step[n] = restep;
        }
        // Phase 3: clear consumed inputs.
        for &n in &self.stepped {
            let n = n as usize;
            if self.has_input[n] {
                for s in &mut self.in_buf[n * delta..(n + 1) * delta] {
                    if *s != blank {
                        *s = A::Sig::default();
                    }
                }
                self.has_input[n] = false;
            }
        }
        // Phase 4: scatter the outputs of stepped nodes, restoring the
        // all-blank out_buf invariant as we go.
        for &n in &self.stepped {
            let n = n as usize;
            for o in 0..delta {
                let out_slot = n * delta + o;
                if self.out_buf[out_slot] == blank {
                    continue;
                }
                let sig = std::mem::take(&mut self.out_buf[out_slot]);
                let r = self.route_out[out_slot];
                if r != NO_ROUTE {
                    let in_slot = r as usize;
                    self.in_buf[in_slot] = sig;
                    self.has_input[in_slot / delta] = true;
                }
            }
        }
        // Phase 5: drain events in node order (step list is already sorted).
        for &n in &self.stepped {
            let n = n as usize;
            if !self.event_bufs[n].is_empty() {
                events.extend(self.event_bufs[n].drain(..).map(|e| (NodeId(n as u32), e)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Test automaton: forwards any received u32+1 on all out-ports after a
    /// fixed dwell; the root injects value 1 at tick 0. Exercises wake-up,
    /// dwell timers, and the quiescence contract.
    #[derive(Clone)]
    struct Hopper {
        meta_is_root: bool,
        out_ports: Vec<usize>,
        pending: Option<(u64, u32)>, // (emit_at_tick, value)
        dwell: u64,
        seen: Vec<u32>,
        started: bool,
    }

    #[derive(Clone, PartialEq, Debug, Default)]
    struct U32Sig(u32);

    impl Automaton for Hopper {
        type Sig = U32Sig;
        type Event = u32;

        fn step(&mut self, ctx: &mut StepCtx<'_, U32Sig, u32>) {
            if self.meta_is_root && !self.started {
                self.started = true;
                self.pending = Some((ctx.tick, 1));
            }
            for s in ctx.inputs {
                if s.0 != 0 {
                    self.seen.push(s.0);
                    ctx.events.push(s.0);
                    if self.pending.is_none() && s.0 < 5 {
                        self.pending = Some((ctx.tick + self.dwell, s.0 + 1));
                    }
                }
            }
            if let Some((at, v)) = self.pending {
                if at <= ctx.tick {
                    for &o in &self.out_ports {
                        ctx.outputs[o] = U32Sig(v);
                    }
                    self.pending = None;
                } else {
                    ctx.request_restep();
                }
            }
        }
    }

    fn hopper_engine(mode: EngineMode, dwell: u64) -> Engine<Hopper> {
        let topo = generators::ring(4);
        Engine::new(&topo, mode, |meta| Hopper {
            meta_is_root: meta.is_root,
            out_ports: meta
                .out_connected
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(i, _)| i)
                .collect(),
            pending: None,
            dwell,
            seen: Vec::new(),
            started: false,
        })
    }

    fn run_to_quiet(eng: &mut Engine<Hopper>) -> Vec<(NodeId, u32)> {
        let mut events = Vec::new();
        for _ in 0..200 {
            eng.tick(&mut events);
            if eng.is_quiet() {
                break;
            }
        }
        assert!(eng.is_quiet(), "hopper network should quiesce");
        events
    }

    #[test]
    fn message_hops_around_ring() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let events = run_to_quiet(&mut eng);
        // Value k arrives at node k (mod 4): 1@n1, 2@n2, 3@n3, 4@n0, 5@n1 stops.
        let vals: Vec<(u32, u32)> = events.iter().map(|&(n, v)| (n.0, v)).collect();
        assert_eq!(vals, vec![(1, 1), (2, 2), (3, 3), (0, 4), (1, 5)]);
    }

    #[test]
    fn all_modes_agree() {
        for dwell in [0u64, 2, 3] {
            let base = run_to_quiet(&mut hopper_engine(EngineMode::Dense, dwell));
            let sparse = run_to_quiet(&mut hopper_engine(EngineMode::Sparse, dwell));
            let par = run_to_quiet(&mut hopper_engine(EngineMode::Parallel, dwell));
            assert_eq!(base, sparse, "dense vs sparse, dwell {dwell}");
            assert_eq!(base, par, "dense vs parallel, dwell {dwell}");
        }
    }

    #[test]
    fn dwell_delays_hops() {
        let mut fast = hopper_engine(EngineMode::Sparse, 0);
        let mut slow = hopper_engine(EngineMode::Sparse, 2);
        run_to_quiet(&mut fast);
        run_to_quiet(&mut slow);
        // 5 hops, each slowed by 2 extra ticks.
        assert!(slow.tick_count() >= fast.tick_count() + 8);
    }

    #[test]
    fn quiet_network_stays_quiet() {
        let mut eng = hopper_engine(EngineMode::Sparse, 1);
        run_to_quiet(&mut eng);
        let t = eng.tick_count();
        let mut events = Vec::new();
        for _ in 0..10 {
            eng.tick(&mut events);
        }
        assert!(events.is_empty());
        assert!(eng.is_quiet());
        assert_eq!(eng.tick_count(), t + 10);
        assert_eq!(eng.signals_in_flight(), 0);
    }

    #[test]
    fn run_until_stops_on_event() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let (events, fired) = eng.run_until(100, |&(_, v)| v == 3);
        assert!(fired);
        assert_eq!(events.last().map(|&(_, v)| v), Some(3));
    }

    #[test]
    fn run_until_times_out() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let (_, fired) = eng.run_until(2, |&(_, v)| v == 99);
        assert!(!fired);
    }

    #[test]
    fn signals_in_flight_counts_nonblank() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // root emitted 1 onto the wire
        assert_eq!(eng.signals_in_flight(), 1);
    }

    /// ring(4) with the wire 0→1 moved from in-port 0 to in-port 1 of n1:
    /// same nodes and δ, one wire re-routed.
    fn ring4_rerouted() -> crate::Topology {
        use crate::ids::Port;
        let mut b = crate::TopologyBuilder::new(4, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(1)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(2), Port(0)).unwrap();
        b.connect(NodeId(2), Port(0), NodeId(3), Port(0)).unwrap();
        b.connect(NodeId(3), Port(0), NodeId(0), Port(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn apply_topology_invalidates_in_flight_signals_on_removed_wires() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 is in flight on wire 0→1 (in-port 0)
        assert_eq!(eng.signals_in_flight(), 1);
        eng.apply_topology(&ring4_rerouted());
        // the old wire is gone; its in-flight character with it
        assert_eq!(eng.signals_in_flight(), 0);
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "the lost character never arrives");
    }

    #[test]
    fn apply_topology_keeps_signals_on_surviving_wires() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let mut events = Vec::new();
        eng.tick(&mut events);
        assert_eq!(eng.signals_in_flight(), 1);
        // re-applying the identical wiring disturbs nothing
        eng.apply_topology(&generators::ring(4));
        assert_eq!(eng.signals_in_flight(), 1);
        let events = run_to_quiet(&mut eng);
        assert_eq!(events.len(), 5, "the full hop chain still completes");
    }

    fn hopper_factory(meta: NodeMeta) -> Hopper {
        Hopper {
            meta_is_root: meta.is_root,
            out_ports: meta
                .out_connected
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(i, _)| i)
                .collect(),
            pending: None,
            dwell: 0,
            seen: Vec::new(),
            started: false,
        }
    }

    #[test]
    fn apply_topology_with_splices_a_joining_automaton_in() {
        use crate::mutation::{MutationKind, TopologyMutation};
        let base = generators::ring(4);
        let (joined, change) = base
            .apply_rooted(
                &TopologyMutation {
                    kind: MutationKind::NodeJoin,
                    // splice the quiet wire 1→2 (the wire 0→1 carries the
                    // in-flight value and re-splicing it would drop it)
                    selector: 1,
                },
                NodeId(0),
            )
            .unwrap();
        let runs: Vec<Vec<(NodeId, u32)>> = [EngineMode::Dense, EngineMode::Sparse]
            .into_iter()
            .map(|mode| {
                let mut eng = hopper_engine(mode, 0);
                let mut events = Vec::new();
                eng.tick(&mut events);
                eng.apply_topology_with(&joined, change, &mut hopper_factory);
                assert_eq!(eng.num_nodes(), 5);
                let mut tail = run_to_quiet(&mut eng);
                events.append(&mut tail);
                events
            })
            .collect();
        assert_eq!(runs[0], runs[1], "dense vs sparse across a join");
        // the newcomer (n4) took part in the hop chain
        assert!(
            runs[0].iter().any(|&(n, _)| n == NodeId(4)),
            "{:?}",
            runs[0]
        );
    }

    #[test]
    fn apply_topology_with_removes_a_leaving_automaton_and_its_signals() {
        use crate::mutation::{MembershipChange, MutationKind, TopologyMutation};
        let base = generators::ring(4);
        let applied = base.apply_or_fallback_rooted(
            &TopologyMutation {
                kind: MutationKind::NodeLeave,
                selector: 1,
            },
            NodeId(0),
        );
        assert_eq!(
            applied.membership,
            MembershipChange::Left { node: NodeId(1) }
        );
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 in flight on the wire 0→1
        assert_eq!(eng.signals_in_flight(), 1);
        eng.apply_topology_with(&applied.topology, applied.membership, &mut hopper_factory);
        assert_eq!(eng.num_nodes(), 3);
        // the in-flight character died with its wire into the departed node
        assert_eq!(eng.signals_in_flight(), 0);
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "the lost character never arrives");
    }

    #[test]
    fn all_modes_agree_across_a_rewire_boundary() {
        let runs: Vec<Vec<(NodeId, u32)>> =
            [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel]
                .into_iter()
                .map(|mode| {
                    let mut eng = hopper_engine(mode, 2);
                    let mut events = Vec::new();
                    for _ in 0..3 {
                        eng.tick(&mut events);
                    }
                    eng.apply_topology(&ring4_rerouted());
                    let mut tail = run_to_quiet(&mut eng);
                    events.append(&mut tail);
                    events
                })
                .collect();
        assert_eq!(runs[0], runs[1], "dense vs sparse across rewire");
        assert_eq!(runs[0], runs[2], "dense vs parallel across rewire");
    }
}
