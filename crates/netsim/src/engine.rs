//! The synchronous lockstep engine (paper §1.1).
//!
//! "Processors synchronously, within a single global clock pulse, perform
//! the following actions in order: read in the inputs from each of their
//! in-ports, process their individual state changes, and prepare and
//! broadcast their outputs."
//!
//! [`Engine::tick`] implements exactly that: every automaton reads the
//! signals that were written onto its in-wires at the end of the previous
//! tick, steps, and writes signals onto its out-wires for the next tick.
//! Wires are double-buffered so all automata observe one consistent
//! snapshot regardless of step order.
//!
//! Three observationally-equivalent execution strategies are provided
//! (equivalence is enforced by tests and measured by experiment E8):
//!
//! * [`EngineMode::Dense`] — step every automaton every tick. The obvious
//!   reference implementation.
//! * [`EngineMode::Sparse`] — event-driven: step only the **active
//!   frontier** — automata with a pending input or a due wake deadline.
//!   The frontier is intrusive: it is updated at signal-write time (the
//!   scatter marks the receiving node) and via a timer wheel/heap fed by
//!   [`StepCtx::request_restep_at`], so a quiet tick costs O(active)
//!   rather than O(N). Protocol activity is usually localized, so this is
//!   the workhorse for large runs. Correctness relies on the *deadline
//!   contract* documented on [`Automaton`].
//! * [`EngineMode::Parallel`] — the sharded event engine. The active
//!   frontier is partitioned over contiguous node ranges, each shard
//!   owning its own timing wheel, overflow heap, and input worklist;
//!   shards are fanned over a persistent worker pool
//!   ([`crate::pool::WorkerPool`]: pre-spawned at construction, parked
//!   between ticks, shut down on drop) when the merged frontier is large
//!   enough, and run inline otherwise — so Parallel never pays dispatch
//!   overhead on quiet-heavy phases. When a flood saturates the network
//!   (≥ half the nodes have pending input) the mode switches to a
//!   *saturated tick*: a dense-scan step/gather over shard ranges that
//!   skips worklist bookkeeping entirely (the frontier is lazily rebuilt
//!   on the way back to event ticks). Shard count comes from
//!   [`Engine::with_root_sharded`], the `GTD_PAR_SHARDS` environment
//!   variable, or auto-sizing by core count.
//!
//! All three modes maintain the same frontier bookkeeping (`wake_at`
//! deadlines, pending-input flags, armed counters), so [`Engine::is_quiet`]
//! is O(1) and [`Engine::skip_lull`] fast-forwards deadline-driven lulls
//! identically regardless of mode — which is what keeps the modes
//! bit-identical even on timelines that skip ticks. Transcripts are
//! byte-identical across modes **and across any shard count**: shard
//! ranges partition the node space in ascending order, each shard's step
//! list is sorted, and every heuristic (pool engagement, saturation)
//! only chooses between observationally-equivalent paths.

use crate::ids::{NodeId, Port, PortMask};
use crate::mutation::MembershipChange;
use crate::pool::{PhaseFn, WorkerPool};
use crate::topology::Topology;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static facts a processor knows about itself at power-on: which of its
/// ports are wired (in-/out-port awareness, §1.2.1) and whether it is the
/// root. The simulator-side `id` is provided **for tracing only** — protocol
/// logic must never branch on it (the paper's processors are anonymous).
#[derive(Clone, Debug)]
pub struct NodeMeta {
    /// Simulator-side identity. Tracing/diagnostics only.
    pub id: NodeId,
    /// True for the distinguished root processor.
    pub is_root: bool,
    /// Bit `i` set — is in-port `i` wired?
    pub in_connected: PortMask,
    /// Bit `o` set — is out-port `o` wired?
    pub out_connected: PortMask,
    /// The network constant δ.
    pub delta: u8,
}

/// Everything an automaton sees during one clock pulse.
pub struct StepCtx<'a, S, E> {
    /// The current global tick (first step happens at tick 0).
    pub tick: u64,
    /// One signal per in-port, indexed by in-port number. Unwired ports
    /// always read blank.
    pub inputs: &'a [S],
    /// One signal per out-port, indexed by out-port number; pre-blanked.
    /// Writing to an unwired port is allowed and discarded.
    pub outputs: &'a mut [S],
    /// Transcript events (only the root uses this in the GTD protocol, but
    /// the engine supports any node emitting).
    pub events: &'a mut Vec<E>,
    wake: &'a mut u64,
}

impl<S, E> StepCtx<'_, S, E> {
    /// Ask to be stepped on the next tick even if no input arrives.
    /// Equivalent to [`StepCtx::request_restep_at`]`(tick + 1)`.
    #[inline]
    pub fn request_restep(&mut self) {
        let at = self.tick + 1;
        if *self.wake > at {
            *self.wake = at;
        }
    }

    /// Ask to be stepped at tick `at` (clamped to the coming tick) even if
    /// no input arrives — the deadline form used by speed timers: a node
    /// holding a character that emerges at tick `d` sleeps until `d`
    /// instead of burning a no-op step on every intervening tick. Multiple
    /// requests within one step keep the earliest deadline.
    #[inline]
    pub fn request_restep_at(&mut self, at: u64) {
        let at = at.max(self.tick + 1);
        if *self.wake > at {
            *self.wake = at;
        }
    }

    /// Convenience: the input on in-port `p`.
    #[inline]
    pub fn input(&self, p: Port) -> &S {
        &self.inputs[p.idx()]
    }
}

/// A synchronous finite-state processor.
///
/// **Deadline contract** (required by [`EngineMode::Sparse`] and by
/// [`Engine::skip_lull`]): if all of an automaton's inputs are blank and
/// its most recent step requested no wake ([`StepCtx::request_restep_at`])
/// — or requested one that has not yet arrived — then stepping it must
/// not change its observable state and must emit only blank outputs,
/// except that it may re-request a wake no earlier than the original.
/// The dense paths step every automaton every tick and rely on those
/// extra steps being no-ops; the event paths skip them entirely; both
/// must agree, and the dense/sparse equivalence tests in this crate and
/// downstream enforce it.
pub trait Automaton: Send {
    /// The wire alphabet — one constant-size character per wire per tick.
    /// `Default` is the blank character b of the paper. `Copy` keeps the
    /// routing phase a plain word move: the engine never clones or
    /// allocates a signal on the hot path.
    type Sig: Copy + Default + PartialEq + Send + Sync;
    /// Transcript event type (what the root pipes to its master computer).
    type Event: Send;

    /// One global clock pulse: read inputs, change state, write outputs.
    fn step(&mut self, ctx: &mut StepCtx<'_, Self::Sig, Self::Event>);

    /// The network was rewired around this processor
    /// ([`Engine::apply_topology`]): `meta` carries the new port
    /// connectivity masks (§1.2.1 port awareness tracks the physical
    /// wiring). Called between ticks, only on processors whose masks
    /// changed; the default ignores the event.
    fn on_rewire(&mut self, meta: &NodeMeta) {
        let _ = meta;
    }

    /// This processor was spliced into a *running* network
    /// ([`Engine::apply_topology_with`] with a
    /// [`MembershipChange::Joined`]): called once on the freshly built
    /// automaton, between ticks, before its first step. `meta` is the
    /// same power-on view the factory received; the newcomer is also
    /// scheduled for a step, so it powers on at the next tick in every
    /// engine mode. The default ignores the event.
    fn on_join(&mut self, meta: &NodeMeta) {
        let _ = meta;
    }
}

/// Execution strategy. See module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineMode {
    /// Step every node every tick, sequentially.
    Dense,
    /// Step only the active frontier (event-driven), sequentially.
    Sparse,
    /// Sharded event-driven stepping over a persistent worker pool, with
    /// a dense-scan fast path for saturated ticks.
    Parallel,
}

impl EngineMode {
    /// Every mode, in canonical order (CLI listings, campaign grids).
    pub const ALL: [EngineMode; 3] = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel];

    /// Stable lowercase name (round-trips through [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Dense => "dense",
            EngineMode::Sparse => "sparse",
            EngineMode::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        EngineMode::ALL
            .into_iter()
            .find(|m| m.name() == s.trim())
            .ok_or_else(|| format!("unknown engine mode {s:?} (known: dense, sparse, parallel)"))
    }
}

const NO_ROUTE: u32 = u32::MAX;

/// Sentinel "no wake requested" deadline.
const NO_WAKE: u64 = u64::MAX;

/// Timing-wheel horizon: wakes within this many ticks of the clock are
/// indexed by a per-tick slot vector instead of the heap. Every dwell the
/// protocol uses (speed-1 = 3 ticks/hop) fits comfortably.
const WHEEL: usize = 8;

/// Hard ceiling on the parallel shard count (and thus pool size).
pub const MAX_SHARDS: usize = 64;

/// Auto-sizing: one shard per ~this many nodes (capped by core count),
/// so small networks never pay for idle shards.
const NODES_PER_SHARD: usize = 256;

/// With auto-sized shards, the worker pool engages only when the coming
/// tick's active set (pending inputs + armed wakes) is at least this many
/// nodes per shard; smaller frontiers run the same phases inline. This is
/// the active-fraction heuristic that replaced the old fixed
/// `PAR_MIN_NODES` cliff: Parallel falls back to sequential event
/// scheduling on quiet-heavy phases instead of losing to Sparse there.
const PAR_ACTIVE_PER_SHARD: usize = 32;

/// One partition of the active frontier: a contiguous node range with its
/// own scheduling structures, so a tick phase over shard `s` touches no
/// other shard's state (cross-shard signal deliveries go through `lanes`).
struct Shard {
    /// First node id owned by this shard.
    lo: usize,
    /// One past the last node id owned by this shard.
    hi: usize,
    /// Near-deadline timing wheel: `wheel[t % WHEEL]` holds owned nodes
    /// whose wake was scheduled for tick `t` within the next [`WHEEL`]
    /// ticks. Entries are lazily validated against `wake_at` when their
    /// slot drains.
    wheel: [Vec<u32>; WHEEL],
    /// Lazy-deletion min-heap of `(wake tick, node)` for owned nodes with
    /// wakes beyond the wheel horizon. Between the wheel and the heap,
    /// whenever `wake_at[n] != NO_WAKE` there is an entry covering
    /// exactly that tick (unless the frontier is dirty).
    timers: BinaryHeap<Reverse<(u64, u32)>>,
    /// Owned nodes whose `has_input` flag flipped on during the last
    /// scatter/merge — the input half of the coming tick's frontier.
    frontier: Vec<u32>,
    /// The shard's step list of the current tick (sorted node ids).
    stepped: Vec<u32>,
    /// `lanes[d]` — nodes in shard `d` this shard delivered a signal to
    /// during the scatter phase. Written only by this shard (its own
    /// lane, no contention); drained by shard `d` in the merge phase,
    /// which dedups via the owner's `has_input`.
    lanes: Vec<Vec<u32>>,
    /// Change to the engine-wide `pending_inputs` accumulated this tick
    /// (absolute per-shard count after a saturated tick).
    pending_delta: i64,
    /// Change to the engine-wide `armed` counter accumulated this tick
    /// (absolute per-shard count after a saturated tick).
    armed_delta: i64,
}

/// Deterministic unreliable-wire model interposed on signal delivery —
/// the fault axis that breaks the paper's synchronous-reliable wire
/// assumption (§1.1) on purpose, sustained rather than one-shot (§1.2.2).
///
/// Every non-blank character written onto a wire is independently
/// dropped with probability `loss`, and otherwise delayed by a number
/// of extra ticks drawn uniformly from `delay_min..=delay_max` (a draw
/// of 0 delivers on schedule). Decisions are **stateless**: each is a
/// pure hash of `(seed, out-slot, emit tick)`, never a sequential RNG
/// stream, so they are independent of step order, shard count, engine
/// mode, and the saturation heuristic — which is what keeps faulted
/// transcripts byte-identical across dense/sparse/parallel and every
/// shard count. An inactive plane (`loss == 0`, no delay) installs no
/// state at all, so unfaulted runs stay bit-identical **and**
/// allocation-free.
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct FaultPlane {
    /// Per-character drop probability in `[0, 1]`.
    pub loss: f64,
    /// Minimum extra delivery delay in ticks.
    pub delay_min: u64,
    /// Maximum extra delivery delay in ticks (0 disables the delay axis).
    pub delay_max: u64,
    /// Seed for the per-character fault hash.
    pub seed: u64,
}

impl FaultPlane {
    /// The reliable plane: nothing dropped, nothing delayed.
    pub const NONE: FaultPlane = FaultPlane {
        loss: 0.0,
        delay_min: 0,
        delay_max: 0,
        seed: 0,
    };

    /// Does this plane ever touch a character?
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || self.delay_max > 0
    }

    /// The same fault axes under a retry-attempt-specific seed. A fresh
    /// power-cycle resets the engine clock, so retrying under the
    /// *identical* seed would replay the identical drop pattern and
    /// wedge identically forever; mixing the attempt index breaks that
    /// loop while staying fully deterministic.
    pub fn with_attempt(&self, attempt: u32) -> FaultPlane {
        if attempt == 0 {
            return *self;
        }
        FaultPlane {
            seed: fault_hash(self.seed, u64::from(attempt), 0, 2),
            ..*self
        }
    }
}

/// Stateless per-character fault hash: a splitmix64-style finalizer over
/// the mixed identity `(seed, a, b, salt)`. Order-independent by
/// construction — no sequential stream state anywhere.
fn fault_hash(seed: u64, a: u64, b: u64, salt: u64) -> u64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ b.wrapping_mul(0xd1b5_4a32_d192_ed03)
        ^ salt.wrapping_mul(0x8cb9_2ba7_2f3d_8dd7);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One character's fate under the plane: `None` = dropped, `Some(0)` =
/// deliver on schedule, `Some(d)` = deliver `d` ticks late.
#[inline]
fn fault_decide(plane: &FaultPlane, threshold: u64, out_slot: usize, emit: u64) -> Option<u64> {
    if plane.loss > 0.0 && fault_hash(plane.seed, out_slot as u64, emit, 0) < threshold {
        return None;
    }
    if plane.delay_max == 0 {
        return Some(0);
    }
    let span = plane.delay_max - plane.delay_min + 1;
    Some(plane.delay_min + fault_hash(plane.seed, out_slot as u64, emit, 1) % span)
}

/// A character taken off its wire by the fault plane, due for delivery at
/// the top of tick `due` (= `emit + 1 + extra`; on-schedule characters
/// are read at `emit + 1`).
struct Delayed<S> {
    due: u64,
    in_slot: u32,
    emit: u64,
    sig: S,
}

/// Per-shard fault accumulation for one tick: written only by the owning
/// shard's phase (no contention), folded into [`FaultState`] after the
/// phase barriers. Accumulation order across shards is irrelevant —
/// delivery sorts by `(in_slot, emit)`.
struct FaultShard<S> {
    dropped: u64,
    delayed: Vec<Delayed<S>>,
}

/// Live fault-plane state: the configuration plus the delayed in-flight
/// set and lifetime counters. Boxed behind an `Option` on the engine so
/// the reliable path pays one null check per delivery site.
struct FaultState<S> {
    plane: FaultPlane,
    /// `loss` scaled to the hash range (precomputed).
    threshold: u64,
    /// Characters in flight past their on-schedule delivery tick.
    delayed: Vec<Delayed<S>>,
    /// One accumulation cell per shard (empty for Dense).
    scratch: Vec<FaultShard<S>>,
    /// Reusable batch buffer for due deliveries.
    due_scratch: Vec<Delayed<S>>,
    /// Lifetime count of characters the plane destroyed.
    dropped: u64,
    /// Lifetime count of characters the plane delayed.
    delayed_total: u64,
}

/// Pick the parallel shard count: an explicit builder knob wins, then the
/// `GTD_PAR_SHARDS` environment variable, then auto-sizing (core count,
/// but at least [`NODES_PER_SHARD`] nodes per shard). Returns the count
/// and whether it was forced (explicit counts always fan out, so tests
/// and CI sweeps exercise the pool even when the heuristic would not).
fn resolve_shards(n: usize, requested: Option<usize>) -> (usize, bool) {
    if let Some(s) = requested {
        return (s.clamp(1, MAX_SHARDS), true);
    }
    if let Ok(v) = std::env::var("GTD_PAR_SHARDS") {
        if let Ok(s) = v.trim().parse::<usize>() {
            if s >= 1 {
                return (s.min(MAX_SHARDS), true);
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let cap = n.div_ceil(NODES_PER_SHARD).max(1);
    (cores.clamp(1, cap).min(MAX_SHARDS), false)
}

/// The lockstep simulator. Generic over the automaton type so the same
/// engine runs the GTD protocol, unit-test probes, and ablation automata.
///
/// Steady-state ticks are allocation-free in every mode: all per-tick
/// scratch (`event_bufs`, per-shard step lists, frontier worklists, timer
/// structures, cross-shard lanes) is reused across ticks, the worker pool
/// is pre-spawned and coordinated by atomics, and topology mutations
/// reuse the route-table rebuild buffers (`apply_scratch`).
pub struct Engine<A: Automaton> {
    mode: EngineMode,
    delta: usize,
    root: NodeId,
    tick: u64,
    nodes: Vec<A>,
    /// `in_buf[n*δ + i]` — signal visible on in-port `i` of node `n` this tick.
    in_buf: Vec<A::Sig>,
    /// `out_buf[n*δ + o]` — signal written on out-port `o` of node `n`.
    out_buf: Vec<A::Sig>,
    /// For each in-slot, the out-slot feeding it (dense/saturated gather).
    route_in: Vec<u32>,
    /// For each out-slot, the in-slot it feeds (event scatter). Bijective
    /// on wired slots — which is what makes cross-shard in-slot writes
    /// race-free.
    route_out: Vec<u32>,
    /// `wake_at[n]` — earliest tick node `n` asked to be stepped at
    /// ([`NO_WAKE`] = no request). The authoritative deadline store; the
    /// shard timer structures are only an index over it.
    wake_at: Vec<u64>,
    /// Nodes with a non-blank signal delivered for the coming tick.
    has_input: Vec<bool>,
    /// Count of `true` entries in `has_input` (O(1) quiet checks).
    pending_inputs: usize,
    /// Count of non-[`NO_WAKE`] entries in `wake_at`.
    armed: usize,
    /// Frontier partitions: empty for Dense, one shard for Sparse, the
    /// resolved shard count for Parallel.
    shards: Vec<Shard>,
    /// Nodes per shard (`shard_of(n) = min(n / chunk, shards - 1)`).
    chunk: usize,
    /// Set by saturated ticks, which bypass the shard worklists: the
    /// wheel/heap/frontier contents are stale and must be rebuilt
    /// ([`Engine::rebuild_frontier`]) before the next event tick.
    frontier_dirty: bool,
    /// The shard count was requested explicitly (knob or env var): fan
    /// event ticks over the pool unconditionally.
    forced_fanout: bool,
    /// Persistent tick-phase workers (Parallel with > 1 shard only);
    /// spawned once here, parked between dispatches, joined on drop.
    pool: Option<WorkerPool>,
    /// Per-node event buffers (kept separate for parallel stepping).
    event_bufs: Vec<Vec<A::Event>>,
    /// Route-table and invalidation rebuild buffers for
    /// [`Engine::apply_topology_with`], reused across mutations so
    /// mutation-dense schedules don't reallocate per event.
    apply_scratch: ApplyScratch<A::Sig>,
    /// The unreliable-wire model, when one is interposed
    /// ([`Engine::set_fault_plane`]); `None` on the reliable path.
    fault: Option<Box<FaultState<A::Sig>>>,
}

/// Reusable buffers for the atomic rewire path.
struct ApplyScratch<S> {
    route_in: Vec<u32>,
    route_out: Vec<u32>,
    in_buf: Vec<S>,
    wake_at: Vec<u64>,
    inv: Vec<Option<usize>>,
}

impl<S> Default for ApplyScratch<S> {
    fn default() -> Self {
        ApplyScratch {
            route_in: Vec::new(),
            route_out: Vec::new(),
            in_buf: Vec::new(),
            wake_at: Vec::new(),
            inv: Vec::new(),
        }
    }
}

/// Fill `route_in`/`route_out` (pre-sized to `n*δ`, all [`NO_ROUTE`])
/// from the wiring of `topo`.
fn fill_routes(topo: &Topology, delta: usize, route_in: &mut [u32], route_out: &mut [u32]) {
    for u in topo.node_ids() {
        for (o, ep) in topo.out_edges(u) {
            let out_slot = u.idx() * delta + o.idx();
            let in_slot = ep.node.idx() * delta + ep.port.idx();
            route_out[out_slot] = in_slot as u32;
            route_in[in_slot] = out_slot as u32;
        }
    }
}

/// Raw view of the engine tables a tick phase touches, type-erased behind
/// a `*const ()` so the non-generic worker pool can call monomorphized
/// phase functions. Rebuilt on every tick (it borrows nothing — the
/// pointers are only valid while the owning `Engine` methods hold still),
/// and published to workers per dispatch.
///
/// Safety argument for the phases below: shard ranges partition the node
/// space, every per-node table is indexed by node id, and each phase
/// writes only (a) state owned by its shard index, or (b) `in_buf` slots
/// reached through `route_out`, which is bijective on wired slots so no
/// two shards ever write the same slot. Phases are separated by pool
/// barriers, so no read races a foreign write.
struct ParCtx<A: Automaton> {
    nodes: *mut A,
    in_buf: *mut A::Sig,
    out_buf: *mut A::Sig,
    event_bufs: *mut Vec<A::Event>,
    wake_at: *mut u64,
    has_input: *mut bool,
    shards: *mut Shard,
    route_in: *const u32,
    route_out: *const u32,
    /// Per-shard fault accumulation cells (null when no plane is active).
    /// Each phase touches only `fault.add(s)` — its own shard's cell.
    fault: *mut FaultShard<A::Sig>,
    fplane: FaultPlane,
    fthreshold: u64,
    num_shards: usize,
    chunk: usize,
    delta: usize,
    tick: u64,
}

/// Event phase A (per shard): drain the shard's due frontier — input
/// worklist, this tick's wheel slot, due overflow timers — into a sorted
/// step list, step each node against the `in_buf` snapshot, fold wake
/// re-arms back into the shard's wheel/heap, and clear consumed inputs.
unsafe fn shard_step<A: Automaton>(ctx: *const (), s: usize) {
    let c = &*ctx.cast::<ParCtx<A>>();
    let sh = &mut *c.shards.add(s);
    let delta = c.delta;
    let tick = c.tick;
    let blank = A::Sig::default();
    sh.stepped.clear();
    sh.stepped.append(&mut sh.frontier);
    let slot = (tick % WHEEL as u64) as usize;
    let mut due = std::mem::take(&mut sh.wheel[slot]);
    for n in due.drain(..) {
        if *c.wake_at.add(n as usize) <= tick {
            sh.stepped.push(n);
        }
    }
    sh.wheel[slot] = due;
    while let Some(&Reverse((at, n))) = sh.timers.peek() {
        if at > tick {
            break;
        }
        sh.timers.pop();
        if *c.wake_at.add(n as usize) <= tick {
            sh.stepped.push(n);
        }
    }
    // Ascending within the shard; shard ranges ascend across shards, so
    // the concatenated step list is globally sorted (event-drain
    // determinism across any shard count). Dedup removes input+wake
    // double entries.
    sh.stepped.sort_unstable();
    sh.stepped.dedup();
    for &n in &sh.stepped {
        let n = n as usize;
        // Pre-blank the out chunk: saturated ticks leave out_buf dirty,
        // so the historical all-blank-between-ticks invariant is gone.
        let outs = std::slice::from_raw_parts_mut(c.out_buf.add(n * delta), delta);
        for sig in outs.iter_mut() {
            *sig = A::Sig::default();
        }
        let old_wake = *c.wake_at.add(n);
        let mut wake = NO_WAKE;
        let mut step_ctx = StepCtx {
            tick,
            inputs: std::slice::from_raw_parts(c.in_buf.add(n * delta), delta),
            outputs: outs,
            events: &mut *c.event_bufs.add(n),
            wake: &mut wake,
        };
        (*c.nodes.add(n)).step(&mut step_ctx);
        if wake != old_wake {
            match (old_wake == NO_WAKE, wake == NO_WAKE) {
                (true, false) => sh.armed_delta += 1,
                (false, true) => sh.armed_delta -= 1,
                _ => {}
            }
            *c.wake_at.add(n) = wake;
            if wake != NO_WAKE {
                if wake - tick < WHEEL as u64 {
                    sh.wheel[(wake % WHEEL as u64) as usize].push(n as u32);
                } else {
                    sh.timers.push(Reverse((wake, n as u32)));
                }
            }
        }
        if *c.has_input.add(n) {
            let ins = std::slice::from_raw_parts_mut(c.in_buf.add(n * delta), delta);
            for sig in ins.iter_mut() {
                if *sig != blank {
                    *sig = A::Sig::default();
                }
            }
            *c.has_input.add(n) = false;
            sh.pending_delta -= 1;
        }
    }
}

/// Event phase B (per shard): scatter the outputs of the shard's stepped
/// nodes by move. In-shard deliveries mark `has_input`/frontier directly;
/// cross-shard deliveries write the in-slot (race-free: `route_out` is
/// bijective on wired slots) and flag the destination on this shard's own
/// lane — reading the foreign owner's `has_input` here would race, so
/// dedup happens in the owner's merge phase.
unsafe fn shard_scatter<A: Automaton>(ctx: *const (), s: usize) {
    let c = &*ctx.cast::<ParCtx<A>>();
    let sh = &mut *c.shards.add(s);
    let delta = c.delta;
    let blank = A::Sig::default();
    for &n in &sh.stepped {
        let n = n as usize;
        for o in 0..delta {
            let out_slot = n * delta + o;
            let sig = *c.out_buf.add(out_slot);
            if sig == blank {
                continue;
            }
            *c.out_buf.add(out_slot) = A::Sig::default();
            let r = *c.route_out.add(out_slot);
            if r == NO_ROUTE {
                continue;
            }
            let in_slot = r as usize;
            if !c.fault.is_null() {
                match fault_decide(&c.fplane, c.fthreshold, out_slot, c.tick) {
                    None => {
                        (*c.fault.add(s)).dropped += 1;
                        continue;
                    }
                    Some(0) => {}
                    Some(d) => {
                        (*c.fault.add(s)).delayed.push(Delayed {
                            due: c.tick + 1 + d,
                            in_slot: r,
                            emit: c.tick,
                            sig,
                        });
                        continue;
                    }
                }
            }
            *c.in_buf.add(in_slot) = sig;
            let dst = in_slot / delta;
            let d = (dst / c.chunk).min(c.num_shards - 1);
            if d == s {
                if !*c.has_input.add(dst) {
                    *c.has_input.add(dst) = true;
                    sh.frontier.push(dst as u32);
                    sh.pending_delta += 1;
                }
            } else {
                sh.lanes[d].push(dst as u32);
            }
        }
    }
}

/// Event phase C (per shard): merge — drain every other shard's lane
/// aimed at this shard, marking newly-delivered owned nodes into this
/// shard's frontier. Lane entries may repeat (several senders, several
/// ports); the owner's `has_input` check dedups.
unsafe fn shard_merge<A: Automaton>(ctx: *const (), d: usize) {
    let c = &*ctx.cast::<ParCtx<A>>();
    for s in 0..c.num_shards {
        if s == d {
            continue;
        }
        let lane: *mut Vec<u32> = &mut (&mut (*c.shards.add(s)).lanes)[d];
        for &dst in (*lane).iter() {
            let dst = dst as usize;
            if !*c.has_input.add(dst) {
                *c.has_input.add(dst) = true;
                let me = &mut *c.shards.add(d);
                me.frontier.push(dst as u32);
                me.pending_delta += 1;
            }
        }
        (*lane).clear();
    }
}

/// Saturated phase A (per shard): dense-scan step every node in the
/// shard's range. When the network floods, stepping the stragglers (no-ops
/// by the deadline contract) is cheaper than worklist bookkeeping — and
/// the armed recount folds into the same pass, which is what lets a
/// saturated Parallel tick beat both Sparse (no sort) and Dense (no
/// separate recount scans). Leaves the shard worklists stale: the caller
/// marks the frontier dirty.
unsafe fn shard_step_all<A: Automaton>(ctx: *const (), s: usize) {
    let c = &*ctx.cast::<ParCtx<A>>();
    let sh = &mut *c.shards.add(s);
    let delta = c.delta;
    let tick = c.tick;
    let mut armed = 0i64;
    for n in sh.lo..sh.hi {
        let outs = std::slice::from_raw_parts_mut(c.out_buf.add(n * delta), delta);
        for sig in outs.iter_mut() {
            *sig = A::Sig::default();
        }
        let mut wake = NO_WAKE;
        let mut step_ctx = StepCtx {
            tick,
            inputs: std::slice::from_raw_parts(c.in_buf.add(n * delta), delta),
            outputs: outs,
            events: &mut *c.event_bufs.add(n),
            wake: &mut wake,
        };
        (*c.nodes.add(n)).step(&mut step_ctx);
        *c.wake_at.add(n) = wake;
        if wake != NO_WAKE {
            armed += 1;
        }
    }
    sh.armed_delta = armed;
}

/// Saturated phase B (per shard): dense gather — copy every wired
/// out-slot into the in-slot it feeds for the shard's nodes, recomputing
/// `has_input` and the shard's pending count in the same pass.
unsafe fn shard_gather<A: Automaton>(ctx: *const (), s: usize) {
    let c = &*ctx.cast::<ParCtx<A>>();
    let sh = &mut *c.shards.add(s);
    let delta = c.delta;
    let blank = A::Sig::default();
    let mut pending = 0i64;
    for n in sh.lo..sh.hi {
        let mut has = false;
        for i in 0..delta {
            let in_slot = n * delta + i;
            let r = *c.route_in.add(in_slot);
            let dst = c.in_buf.add(in_slot);
            if r == NO_ROUTE {
                if *dst != blank {
                    *dst = A::Sig::default();
                }
            } else {
                let mut sig = *c.out_buf.add(r as usize);
                if sig != blank && !c.fault.is_null() {
                    match fault_decide(&c.fplane, c.fthreshold, r as usize, c.tick) {
                        None => {
                            (*c.fault.add(s)).dropped += 1;
                            sig = blank;
                        }
                        Some(0) => {}
                        Some(d) => {
                            (*c.fault.add(s)).delayed.push(Delayed {
                                due: c.tick + 1 + d,
                                in_slot: in_slot as u32,
                                emit: c.tick,
                                sig,
                            });
                            sig = blank;
                        }
                    }
                }
                *dst = sig;
                if *dst != blank {
                    has = true;
                }
            }
        }
        *c.has_input.add(n) = has;
        if has {
            pending += 1;
        }
    }
    sh.pending_delta = pending;
}

impl<A: Automaton> Engine<A> {
    /// Build an engine over `topo`, constructing one automaton per node via
    /// `factory`. Node 0 is the root by convention (callers that want a
    /// different root relabel their topology).
    pub fn new(topo: &Topology, mode: EngineMode, mut factory: impl FnMut(NodeMeta) -> A) -> Self {
        Self::with_root(topo, mode, NodeId(0), &mut factory)
    }

    /// Like [`Engine::new`] but with an explicit root processor.
    pub fn with_root(
        topo: &Topology,
        mode: EngineMode,
        root: NodeId,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) -> Self {
        Self::with_root_sharded(topo, mode, root, None, factory)
    }

    /// Like [`Engine::with_root`] with an explicit parallel shard count.
    ///
    /// `par_shards` only affects [`EngineMode::Parallel`] (clamped to
    /// `1..=`[`MAX_SHARDS`]); `None` consults the `GTD_PAR_SHARDS`
    /// environment variable, then auto-sizes by core count with at least
    /// ~256 nodes per shard. An explicit count (knob or env) also forces
    /// event ticks over the worker pool regardless of frontier size, so
    /// determinism sweeps exercise the pooled phases. Transcripts are
    /// bit-identical across every shard count.
    pub fn with_root_sharded(
        topo: &Topology,
        mode: EngineMode,
        root: NodeId,
        par_shards: Option<usize>,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) -> Self {
        assert!(root.idx() < topo.num_nodes(), "root must exist");
        let n = topo.num_nodes();
        let delta = topo.delta() as usize;
        let mut nodes = Vec::with_capacity(n);
        for id in topo.node_ids() {
            nodes.push(factory(NodeMeta {
                id,
                is_root: id == root,
                in_connected: topo.in_mask(id),
                out_connected: topo.out_mask(id),
                delta: topo.delta(),
            }));
        }
        let mut route_in = vec![NO_ROUTE; n * delta];
        let mut route_out = vec![NO_ROUTE; n * delta];
        fill_routes(topo, delta, &mut route_in, &mut route_out);
        let (s_count, forced_fanout) = match mode {
            EngineMode::Dense => (0, false),
            EngineMode::Sparse => (1, false),
            EngineMode::Parallel => resolve_shards(n, par_shards),
        };
        let chunk = if s_count > 0 {
            n.div_ceil(s_count).max(1)
        } else {
            1
        };
        // tick 0's wheel slot holds every owned node (the power-on step:
        // every node must be stepped at least once so initiators can
        // start protocols without external input); Dense steps everyone
        // unconditionally and keeps no shards at all.
        let shards: Vec<Shard> = (0..s_count)
            .map(|s| {
                let lo = (s * chunk).min(n);
                let hi = ((s + 1) * chunk).min(n);
                Shard {
                    lo,
                    hi,
                    wheel: std::array::from_fn(|i| {
                        if i == 0 {
                            (lo as u32..hi as u32).collect()
                        } else {
                            Vec::new()
                        }
                    }),
                    timers: BinaryHeap::new(),
                    frontier: Vec::new(),
                    stepped: Vec::with_capacity(hi - lo),
                    lanes: (0..s_count).map(|_| Vec::new()).collect(),
                    pending_delta: 0,
                    armed_delta: 0,
                }
            })
            .collect();
        let pool =
            (mode == EngineMode::Parallel && s_count > 1).then(|| WorkerPool::new(s_count - 1));
        Engine {
            mode,
            delta,
            root,
            tick: 0,
            nodes,
            in_buf: vec![A::Sig::default(); n * delta],
            out_buf: vec![A::Sig::default(); n * delta],
            route_in,
            route_out,
            // Arm every wake for tick 0 (the power-on step).
            wake_at: vec![0; n],
            has_input: vec![false; n],
            pending_inputs: 0,
            armed: n,
            shards,
            chunk,
            frontier_dirty: false,
            forced_fanout,
            pool,
            event_bufs: (0..n).map(|_| Vec::new()).collect(),
            apply_scratch: ApplyScratch::default(),
            fault: None,
        }
    }

    /// Interpose `plane` on every wire delivery (see [`FaultPlane`]).
    /// An inactive plane installs nothing — the reliable path stays
    /// byte-identical and allocation-free. Replaces any previous plane
    /// and discards its delayed in-flight characters.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        if !plane.is_active() {
            self.fault = None;
            return;
        }
        let threshold = (plane.loss.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        let shards = self.shards.len();
        self.fault = Some(Box::new(FaultState {
            plane,
            threshold,
            delayed: Vec::new(),
            scratch: (0..shards)
                .map(|_| FaultShard {
                    dropped: 0,
                    delayed: Vec::new(),
                })
                .collect(),
            due_scratch: Vec::new(),
            dropped: 0,
            delayed_total: 0,
        }));
    }

    /// The interposed fault plane ([`FaultPlane::NONE`] when reliable).
    pub fn fault_plane(&self) -> FaultPlane {
        self.fault.as_ref().map_or(FaultPlane::NONE, |f| f.plane)
    }

    /// Lifetime count of characters the fault plane destroyed.
    pub fn fault_dropped(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.dropped)
    }

    /// Lifetime count of characters the fault plane delayed.
    pub fn fault_delayed(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.delayed_total)
    }

    /// Number of automata.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global ticks elapsed.
    #[inline]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Frontier partitions this engine schedules over (0 for Dense, 1 for
    /// Sparse, the resolved shard count for Parallel).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pre-spawned pool workers (shard count − 1 for Parallel with more
    /// than one shard; 0 otherwise — the main thread is always a worker).
    #[inline]
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::workers)
    }

    /// Immutable view of an automaton (invariant checks, tracing).
    #[inline]
    pub fn node(&self, n: NodeId) -> &A {
        &self.nodes[n.idx()]
    }

    /// Immutable view of all automata.
    #[inline]
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// The shard owning node `n`.
    #[inline]
    fn shard_of(&self, n: usize) -> usize {
        (n / self.chunk).min(self.shards.len().saturating_sub(1))
    }

    /// Index node `n`'s wake at tick `wake` into its shard's timer
    /// structures: near wakes go to the wheel slot that drains at exactly
    /// that tick, far ones to the overflow heap. Caller has already
    /// stored `wake` in `wake_at` (which is what validates entries when
    /// they surface). Dense keeps no shards and consults `wake_at` by
    /// scan; a dirty frontier skips indexing (the rebuild re-indexes).
    #[inline]
    fn schedule_wake(&mut self, n: u32, wake: u64) {
        if self.shards.is_empty() || self.frontier_dirty {
            return;
        }
        let tick = self.tick;
        let s = self.shard_of(n as usize);
        let sh = &mut self.shards[s];
        if wake.saturating_sub(tick) < WHEEL as u64 {
            sh.wheel[(wake % WHEEL as u64) as usize].push(n);
        } else {
            sh.timers.push(Reverse((wake, n)));
        }
    }

    /// Arm node `n`'s wake for tick `at` (keeping any earlier deadline).
    fn arm(&mut self, n: usize, at: u64) {
        if self.wake_at[n] <= at {
            return;
        }
        if self.wake_at[n] == NO_WAKE {
            self.armed += 1;
        }
        self.wake_at[n] = at;
        self.schedule_wake(n as u32, at);
    }

    /// Mutable access to one automaton — the "outside source" of the paper
    /// nudging a processor (e.g. the master computer restarting the root
    /// for a re-map). The node is also scheduled for a step so the nudge
    /// takes effect even in the event-driven modes.
    pub fn node_mut(&mut self, n: NodeId) -> &mut A {
        self.arm(n.idx(), self.tick);
        &mut self.nodes[n.idx()]
    }

    /// Atomically rewire the running network to `new_topo` between ticks
    /// — the live half of a topology mutation (paper §1: "the topology …
    /// might change").
    ///
    /// * Route tables are rebuilt from the new wiring (into buffers reused
    ///   across mutations — no per-event allocation once warmed).
    /// * In-flight signals are invalidated on every wire that was removed
    ///   or re-sourced: a character already delivered for the coming tick
    ///   survives only if the identical wire (same out-slot → same
    ///   in-slot) still exists.
    /// * Every automaton whose port connectivity changed receives
    ///   [`Automaton::on_rewire`] with its new [`NodeMeta`] and is
    ///   scheduled for a step, so all three engine modes observe the
    ///   mutation on the same tick and stay observationally identical.
    ///
    /// The processor count must be preserved (δ always is); for membership
    /// changes use [`Engine::apply_topology_with`].
    pub fn apply_topology(&mut self, new_topo: &Topology) {
        assert_eq!(
            new_topo.num_nodes(),
            self.nodes.len(),
            "apply_topology preserves the node count (use apply_topology_with)"
        );
        self.apply_topology_with(new_topo, MembershipChange::None, &mut |_| {
            unreachable!("no processor joins without a membership change")
        });
    }

    /// [`Engine::apply_topology`] generalized to membership changes: the
    /// running network is atomically rewired to `new_topo` between ticks
    /// while a processor joins or leaves.
    ///
    /// * [`MembershipChange::Joined`] — `factory` builds the newcomer's
    ///   automaton from its power-on [`NodeMeta`]; it then receives
    ///   [`Automaton::on_join`] and is scheduled, so it powers on at the
    ///   next tick identically in all three engine modes.
    /// * [`MembershipChange::Left`] — the departed automaton is removed
    ///   (its in-flight signals and pending inputs with it) and every
    ///   higher processor id shifts down by one, mirroring
    ///   [`MembershipChange::relabel`]. The engine's root must survive
    ///   (session drivers guarantee it: the collector's host never
    ///   leaves); its id is re-tracked automatically.
    ///
    /// In-flight characters survive exactly on wires that connect the same
    /// *physical* processors through the same ports on both sides of the
    /// change; everything else is invalidated, as for a plain rewire.
    /// The sharded frontier is rebuilt for the new node count: shard
    /// ranges are recomputed (the shard *count* is fixed at construction)
    /// and every worklist, wheel, heap, and lane is reindexed.
    pub fn apply_topology_with(
        &mut self,
        new_topo: &Topology,
        change: MembershipChange,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) {
        let old_n = self.nodes.len();
        let delta = self.delta;
        assert_eq!(
            new_topo.delta() as usize,
            delta,
            "mutations preserve the port bound"
        );
        // A rewire invalidates delayed characters wholesale: their wire
        // identity (in-slot) may no longer mean the same physical wire,
        // so the plane destroys them rather than misdeliver.
        if let Some(f) = self.fault.as_deref_mut() {
            f.dropped += f.delayed.len() as u64;
            f.delayed.clear();
        }
        let new_n = new_topo.num_nodes();
        let mut scratch = std::mem::take(&mut self.apply_scratch);
        // new-id → old-id of the same physical processor (None: newcomer).
        let inv = &mut scratch.inv;
        inv.clear();
        match change {
            MembershipChange::None => {
                assert_eq!(new_n, old_n, "membership change says the count is fixed");
                inv.extend((0..old_n).map(Some));
            }
            MembershipChange::Joined { node } => {
                assert_eq!(new_n, old_n + 1, "a join grows the network by one");
                assert_eq!(node.idx(), old_n, "the newcomer takes the highest id");
                inv.extend((0..new_n).map(|i| (i < old_n).then_some(i)));
            }
            MembershipChange::Left { node } => {
                assert_eq!(new_n, old_n - 1, "a leave shrinks the network by one");
                let x = node.idx();
                assert!(x < old_n, "departed processor must exist");
                assert_ne!(x, self.root.idx(), "the root cannot leave");
                inv.extend((0..new_n).map(|i| Some(if i < x { i } else { i + 1 })));
            }
        }
        let route_in = &mut scratch.route_in;
        let route_out = &mut scratch.route_out;
        route_in.clear();
        route_in.resize(new_n * delta, NO_ROUTE);
        route_out.clear();
        route_out.resize(new_n * delta, NO_ROUTE);
        fill_routes(new_topo, delta, route_in, route_out);
        // Carry in-flight characters across wires that connect the same
        // physical processors through the same ports; every removed or
        // re-sourced wire loses its character.
        let blank = A::Sig::default();
        let in_buf = &mut scratch.in_buf;
        in_buf.clear();
        in_buf.resize(new_n * delta, A::Sig::default());
        for (slot, dst) in in_buf.iter_mut().enumerate() {
            let r = route_in[slot];
            if r == NO_ROUTE {
                continue;
            }
            let (Some(old_dst), Some(old_src)) = (inv[slot / delta], inv[r as usize / delta])
            else {
                continue; // a wire touching the newcomer carries nothing yet
            };
            let old_in_slot = old_dst * delta + slot % delta;
            let old_out_slot = (old_src * delta + r as usize % delta) as u32;
            if self.route_in[old_in_slot] == old_out_slot && self.in_buf[old_in_slot] != blank {
                *dst = self.in_buf[old_in_slot];
            }
        }
        // Splice the automaton tables into the new indexing.
        match change {
            MembershipChange::None => {}
            MembershipChange::Joined { node } => {
                let meta = NodeMeta {
                    id: node,
                    is_root: false,
                    in_connected: new_topo.in_mask(node),
                    out_connected: new_topo.out_mask(node),
                    delta: new_topo.delta(),
                };
                let mut automaton = factory(meta.clone());
                automaton.on_join(&meta);
                self.nodes.push(automaton);
                self.event_bufs.push(Vec::new());
            }
            MembershipChange::Left { node } => {
                let x = node.idx();
                self.nodes.remove(x);
                self.event_bufs.remove(x);
                if self.root.idx() > x {
                    self.root = NodeId(self.root.0 - 1);
                }
            }
        }
        // Carry wake deadlines across the relabeling; the newcomer's
        // power-on step is armed for the coming tick.
        let wake_at = &mut scratch.wake_at;
        wake_at.clear();
        wake_at.extend(inv.iter().map(|old| match old {
            Some(old_id) => self.wake_at[*old_id],
            None => self.tick,
        }));
        // Notify surviving processors whose port awareness changed and
        // schedule them so the event modes step them exactly when dense
        // would.
        for (new_id, &old) in inv.iter().enumerate() {
            let Some(old_id) = old else { continue };
            let changed = (0..delta).any(|p| {
                let (old_slot, new_slot) = (old_id * delta + p, new_id * delta + p);
                (self.route_out[old_slot] == NO_ROUTE) != (route_out[new_slot] == NO_ROUTE)
                    || (self.route_in[old_slot] == NO_ROUTE) != (route_in[new_slot] == NO_ROUTE)
            });
            if changed {
                let id = NodeId(new_id as u32);
                self.nodes[new_id].on_rewire(&NodeMeta {
                    id,
                    is_root: id == self.root,
                    in_connected: new_topo.in_mask(id),
                    out_connected: new_topo.out_mask(id),
                    delta: new_topo.delta(),
                });
                wake_at[new_id] = wake_at[new_id].min(self.tick);
            }
        }
        // Swap the rebuilt tables in; the displaced buffers become the
        // next mutation's scratch.
        std::mem::swap(&mut self.route_in, route_in);
        std::mem::swap(&mut self.route_out, route_out);
        std::mem::swap(&mut self.in_buf, in_buf);
        std::mem::swap(&mut self.wake_at, wake_at);
        self.apply_scratch = scratch;
        self.out_buf.clear();
        self.out_buf.resize(new_n * delta, A::Sig::default());
        // Rebuild the sharded frontier for the new indexing: recompute
        // shard ranges (the count is fixed), clear every worklist, then
        // re-mark pending inputs and re-index armed wakes.
        self.has_input.clear();
        self.has_input.resize(new_n, false);
        if !self.shards.is_empty() {
            self.chunk = new_n.div_ceil(self.shards.len()).max(1);
        }
        let chunk = self.chunk;
        for (s, sh) in self.shards.iter_mut().enumerate() {
            sh.lo = (s * chunk).min(new_n);
            sh.hi = ((s + 1) * chunk).min(new_n);
            for slot in &mut sh.wheel {
                slot.clear();
            }
            sh.timers.clear();
            sh.frontier.clear();
            sh.stepped.clear();
            for lane in &mut sh.lanes {
                lane.clear();
            }
            sh.pending_delta = 0;
            sh.armed_delta = 0;
        }
        self.frontier_dirty = false;
        self.pending_inputs = 0;
        for n in 0..new_n {
            let sigs = &self.in_buf[n * delta..(n + 1) * delta];
            if sigs.iter().any(|s| *s != blank) {
                self.has_input[n] = true;
                self.pending_inputs += 1;
                if !self.shards.is_empty() {
                    let s = self.shard_of(n);
                    self.shards[s].frontier.push(n as u32);
                }
            }
        }
        self.armed = 0;
        for n in 0..new_n {
            let w = self.wake_at[n];
            if w != NO_WAKE {
                self.armed += 1;
                self.schedule_wake(n as u32, w);
            }
        }
    }

    /// True when nothing is pending: no node has an armed wake deadline
    /// and no non-blank signal is in flight. O(1) — the frontier counters
    /// make the scan of the old implementation unnecessary. A quiet
    /// network stays quiet forever.
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.pending_inputs == 0
            && self.armed == 0
            && self.fault.as_ref().is_none_or(|f| f.delayed.is_empty())
    }

    /// Census of non-blank signals currently in flight (delivered for the
    /// coming tick, plus any the fault plane is holding back). Used by
    /// the Lemma 4.2 cleanliness experiments.
    pub fn signals_in_flight(&self) -> usize {
        let blank = A::Sig::default();
        self.in_buf.iter().filter(|s| **s != blank).count()
            + self.fault.as_ref().map_or(0, |f| f.delayed.len())
    }

    /// Fast-forward a quiet network by `ticks` clock pulses. A quiet
    /// network stays quiet (the deadline contract makes every step a
    /// no-op), so only the clock advances — this lets dynamic timelines
    /// idle to a far-future mutation tick in O(1). Panics if the network
    /// is not quiet.
    pub fn skip_quiet_ticks(&mut self, ticks: u64) {
        assert!(self.is_quiet(), "can only skip ticks on a quiet network");
        self.tick += ticks;
    }

    /// The earliest armed wake deadline, if any. Drops stale timer-heap
    /// entries as they surface (amortized O(1) in the event modes; a
    /// linear scan in Dense — which pays O(N) per tick anyway — and
    /// while the frontier is dirty after saturated ticks).
    fn next_wake(&mut self) -> Option<u64> {
        if self.shards.is_empty() || self.frontier_dirty {
            return self.wake_at.iter().copied().filter(|&w| w != NO_WAKE).min();
        }
        // Earliest genuine wake on any shard's wheel: scan the coming
        // WHEEL slots in tick order; the first slot holding a validated
        // entry is exact (an earlier genuine wake would have a validated
        // entry in an earlier slot or a heap).
        let mut best = None;
        'wheels: for d in 0..WHEEL as u64 {
            let t_cand = self.tick + d;
            let slot = (t_cand % WHEEL as u64) as usize;
            for sh in &self.shards {
                if sh.wheel[slot]
                    .iter()
                    .any(|&n| self.wake_at[n as usize] <= t_cand)
                {
                    best = Some(t_cand);
                    break 'wheels;
                }
            }
        }
        // Earliest genuine far wake: drop stale tops off each shard heap.
        let wake_at = &self.wake_at;
        for sh in &mut self.shards {
            while let Some(&Reverse((at, n))) = sh.timers.peek() {
                if wake_at[n as usize] == at {
                    best = Some(best.map_or(at, |b: u64| b.min(at)));
                    break;
                }
                sh.timers.pop();
            }
        }
        best
    }

    /// Fast-forward a **lull**: if the coming tick would step nothing (no
    /// signal in flight, no wake deadline due), jump the clock straight to
    /// the earliest armed deadline — or to `limit`, whichever is smaller —
    /// in O(1). Generalizes [`Engine::skip_quiet_ticks`]: a fully quiet
    /// network skips to `limit`; a network merely waiting out speed-timer
    /// dwells skips to the next deadline. Skipped ticks are pure no-ops by
    /// the deadline contract, and the decision depends only on
    /// mode-uniform frontier state, so timelines that skip stay
    /// bit-identical across all three engine modes. Returns the number of
    /// ticks skipped (0 when the coming tick has work or `limit` is not
    /// ahead of the clock).
    pub fn skip_lull(&mut self, limit: u64) -> u64 {
        if self.pending_inputs > 0 || limit <= self.tick {
            return 0;
        }
        let mut target = match self.next_wake() {
            Some(w) => w.min(limit),
            None => limit,
        };
        // A delayed character's due tick is a delivery deadline: jumping
        // past it would miss the delivery, so it caps the skip exactly
        // like an armed wake (and identically in every mode).
        if let Some(f) = self.fault.as_ref() {
            if let Some(min_due) = f.delayed.iter().map(|d| d.due).min() {
                target = target.min(min_due);
            }
        }
        if target <= self.tick {
            return 0;
        }
        let skipped = target - self.tick;
        self.tick = target;
        skipped
    }

    /// Advance one global clock tick. Events emitted by nodes are appended
    /// to `events` in ascending node order (deterministic across modes and
    /// shard counts).
    pub fn tick(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        self.deliver_due_faults();
        match self.mode {
            EngineMode::Dense => self.tick_dense(events),
            EngineMode::Sparse => self.tick_event(events),
            EngineMode::Parallel => {
                // Saturation: once half the nodes hold a pending input,
                // a dense-scan tick beats worklist bookkeeping. Either
                // path is observationally identical (extra steps are
                // no-ops by the deadline contract), so the threshold
                // affects speed only, never transcripts.
                if self.pending_inputs * 2 >= self.nodes.len() {
                    self.tick_saturated(events);
                } else {
                    if self.frontier_dirty {
                        self.rebuild_frontier();
                    }
                    self.tick_event(events);
                }
            }
        }
        self.tick += 1;
    }

    /// Run until `stop` returns true for some emitted event, or until the
    /// network goes quiet, or until `max_ticks` elapse. Returns all events
    /// emitted and whether `stop` fired.
    pub fn run_until(
        &mut self,
        max_ticks: u64,
        mut stop: impl FnMut(&(NodeId, A::Event)) -> bool,
    ) -> (Vec<(NodeId, A::Event)>, bool) {
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        for _ in 0..max_ticks {
            scratch.clear();
            self.tick(&mut scratch);
            let mut fired = false;
            for ev in scratch.drain(..) {
                if stop(&ev) {
                    fired = true;
                }
                all.push(ev);
            }
            if fired {
                return (all, true);
            }
            if self.is_quiet() {
                break;
            }
        }
        (all, false)
    }

    /// Deliver every delayed character that has come due — at the top of
    /// the tick, into blank in-slots only: a character freshly delivered
    /// on its wire wins over a late one, and among late characters for
    /// the same in-slot the latest emission wins (the rest count as
    /// dropped). Sorting the batch by `(in_slot, emit)` — unique, since
    /// `route_out` is bijective — makes the outcome independent of the
    /// order shards appended to the delayed set, preserving byte-identity
    /// across modes and shard counts.
    fn deliver_due_faults(&mut self) {
        let Some(f) = self.fault.as_deref_mut() else {
            return;
        };
        if f.delayed.is_empty() {
            return;
        }
        let tick = self.tick;
        let due = &mut f.due_scratch;
        due.clear();
        let mut i = 0;
        while i < f.delayed.len() {
            if f.delayed[i].due <= tick {
                due.push(f.delayed.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if due.is_empty() {
            return;
        }
        due.sort_unstable_by_key(|d| (d.in_slot, d.emit));
        let blank = A::Sig::default();
        let delta = self.delta;
        for i in 0..due.len() {
            let d = &due[i];
            let slot = d.in_slot as usize;
            let last_for_slot = due.get(i + 1).is_none_or(|n| n.in_slot != d.in_slot);
            if !last_for_slot || self.in_buf[slot] != blank {
                f.dropped += 1;
                continue;
            }
            self.in_buf[slot] = d.sig;
            let n = slot / delta;
            if !self.has_input[n] {
                self.has_input[n] = true;
                self.pending_inputs += 1;
                // Between ticks, so the engine-wide counter is adjusted
                // directly; a dirty frontier re-derives from `has_input`.
                if !self.shards.is_empty() && !self.frontier_dirty {
                    let s = (n / self.chunk).min(self.shards.len() - 1);
                    self.shards[s].frontier.push(n as u32);
                }
            }
        }
        due.clear();
    }

    /// Fold the per-shard fault accumulation cells into the global plane
    /// state after the tick's phase barriers.
    fn settle_faults(&mut self) {
        let Some(f) = self.fault.as_deref_mut() else {
            return;
        };
        for i in 0..f.scratch.len() {
            f.dropped += std::mem::take(&mut f.scratch[i].dropped);
            f.delayed_total += f.scratch[i].delayed.len() as u64;
            let mut v = std::mem::take(&mut f.scratch[i].delayed);
            f.delayed.append(&mut v);
            f.scratch[i].delayed = v;
        }
    }

    /// The type-erased table view the tick phases work through.
    fn par_ctx(&mut self) -> ParCtx<A> {
        let (fault, fplane, fthreshold) = match self.fault.as_deref_mut() {
            Some(f) => (f.scratch.as_mut_ptr(), f.plane, f.threshold),
            None => (std::ptr::null_mut(), FaultPlane::NONE, 0),
        };
        ParCtx {
            fault,
            fplane,
            fthreshold,
            nodes: self.nodes.as_mut_ptr(),
            in_buf: self.in_buf.as_mut_ptr(),
            out_buf: self.out_buf.as_mut_ptr(),
            event_bufs: self.event_bufs.as_mut_ptr(),
            wake_at: self.wake_at.as_mut_ptr(),
            has_input: self.has_input.as_mut_ptr(),
            shards: self.shards.as_mut_ptr(),
            route_in: self.route_in.as_ptr(),
            route_out: self.route_out.as_ptr(),
            num_shards: self.shards.len(),
            chunk: self.chunk,
            delta: self.delta,
            tick: self.tick,
        }
    }

    /// Run each phase over every shard, with a barrier between phases:
    /// fanned over the worker pool when `use_pool`, inline otherwise.
    /// Both drivers execute the identical phase functions, which is what
    /// keeps pooled and sequential ticks bit-identical.
    fn run_phases(&mut self, phases: &[PhaseFn], use_pool: bool) {
        let ctx = self.par_ctx();
        let p = (&ctx as *const ParCtx<A>).cast::<()>();
        let shards = ctx.num_shards;
        match (&self.pool, use_pool) {
            (Some(pool), true) => {
                for &phase in phases {
                    // SAFETY: ctx lives until this call returns, and each
                    // phase touches only shard-disjoint state (see ParCtx).
                    unsafe { pool.dispatch(phase, p, shards) };
                }
            }
            _ => {
                for &phase in phases {
                    for s in 0..shards {
                        // SAFETY: as above, with no concurrency at all.
                        unsafe { phase(p, s) };
                    }
                }
            }
        }
    }

    /// Fold the per-shard tick deltas into the engine-wide counters.
    /// After a saturated tick the per-shard values are absolute recounts;
    /// after an event tick they are increments.
    fn settle_counters(&mut self, absolute: bool) {
        let mut pending = 0i64;
        let mut armed = 0i64;
        for sh in &mut self.shards {
            pending += sh.pending_delta;
            armed += sh.armed_delta;
            sh.pending_delta = 0;
            sh.armed_delta = 0;
        }
        if !absolute {
            pending += self.pending_inputs as i64;
            armed += self.armed as i64;
        }
        self.pending_inputs = pending as usize;
        self.armed = armed as usize;
    }

    /// One event-driven tick over the shards (Sparse always, Parallel
    /// below saturation): step/scatter/merge phases with barriers, then
    /// counter settlement and the event drain. The pool engages when the
    /// active set justifies dispatch (or fan-out is forced); otherwise
    /// the same phases run inline — the active-fraction fallback that
    /// keeps Parallel from ever losing to Sparse on quiet phases.
    fn tick_event(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        let s_count = self.shards.len();
        let use_pool = self.pool.is_some()
            && (self.forced_fanout
                || self.pending_inputs + self.armed >= s_count * PAR_ACTIVE_PER_SHARD);
        let phases: [PhaseFn; 3] = [shard_step::<A>, shard_scatter::<A>, shard_merge::<A>];
        self.run_phases(&phases, use_pool);
        self.settle_counters(false);
        self.settle_faults();
        // Drain events shard by shard: ranges ascend and each step list
        // is sorted, so the order is ascending node id — identical to
        // Dense and to every other shard count.
        for si in 0..s_count {
            for i in 0..self.shards[si].stepped.len() {
                let n = self.shards[si].stepped[i] as usize;
                if !self.event_bufs[n].is_empty() {
                    events.extend(self.event_bufs[n].drain(..).map(|e| (NodeId(n as u32), e)));
                }
            }
        }
    }

    /// One saturated tick (Parallel only): dense-scan step + gather over
    /// shard ranges, skipping all worklist bookkeeping. Marks the
    /// frontier dirty — the wheel/heap/frontier no longer reflect
    /// `wake_at`/`has_input` and are rebuilt before the next event tick.
    fn tick_saturated(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        let use_pool = self.pool.is_some();
        let phases: [PhaseFn; 2] = [shard_step_all::<A>, shard_gather::<A>];
        self.run_phases(&phases, use_pool);
        self.settle_counters(true);
        self.settle_faults();
        self.frontier_dirty = true;
        for (n, buf) in self.event_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                events.extend(buf.drain(..).map(|e| (NodeId(n as u32), e)));
            }
        }
    }

    /// Re-derive every shard's worklists from the authoritative tables
    /// (`has_input`, `wake_at`) after saturated ticks bypassed them. O(N);
    /// runs only on the saturated→event transition.
    fn rebuild_frontier(&mut self) {
        for sh in &mut self.shards {
            for slot in &mut sh.wheel {
                slot.clear();
            }
            sh.timers.clear();
            sh.frontier.clear();
            sh.stepped.clear();
        }
        self.frontier_dirty = false;
        self.pending_inputs = 0;
        self.armed = 0;
        for n in 0..self.nodes.len() {
            if self.has_input[n] {
                self.pending_inputs += 1;
                let s = self.shard_of(n);
                self.shards[s].frontier.push(n as u32);
            }
            let w = self.wake_at[n];
            if w != NO_WAKE {
                self.armed += 1;
                self.schedule_wake(n as u32, w);
            }
        }
    }

    /// One dense tick: step everyone, gather every wire, recount the
    /// frontier counters wholesale. Sequential — the reference
    /// implementation stays the simplest possible loop.
    fn tick_dense(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        let delta = self.delta;
        let tick = self.tick;
        // Phase 1: step everyone against the in_buf snapshot. Each node's
        // wake slot is reset and re-requested within its step (the
        // deadline contract keeps re-requests idempotent).
        let in_buf = &self.in_buf;
        for (idx, ((node, out_chunk), (evs, wake))) in self
            .nodes
            .iter_mut()
            .zip(self.out_buf.chunks_mut(delta))
            .zip(self.event_bufs.iter_mut().zip(self.wake_at.iter_mut()))
            .enumerate()
        {
            for s in out_chunk.iter_mut() {
                *s = A::Sig::default();
            }
            *wake = NO_WAKE;
            let mut ctx = StepCtx {
                tick,
                inputs: &in_buf[idx * delta..(idx + 1) * delta],
                outputs: out_chunk,
                events: evs,
                wake,
            };
            node.step(&mut ctx);
        }
        // Phase 2: gather — route every wired out-slot to its in-slot by
        // plain copy (the `Copy` bound keeps this a word move, never a
        // clone or an allocation). An active fault plane interposes the
        // same stateless per-character decision the sharded paths make.
        let out_buf = &self.out_buf;
        let route_in = &self.route_in;
        let blank = A::Sig::default();
        let mut fault = self.fault.take();
        for (nid, (chunk, has)) in self
            .in_buf
            .chunks_mut(delta)
            .zip(self.has_input.iter_mut())
            .enumerate()
        {
            *has = false;
            for (i, dst) in chunk.iter_mut().enumerate() {
                let r = route_in[nid * delta + i];
                if r == NO_ROUTE {
                    if *dst != blank {
                        *dst = A::Sig::default();
                    }
                } else {
                    let mut sig = out_buf[r as usize];
                    if sig != blank {
                        if let Some(f) = fault.as_deref_mut() {
                            match fault_decide(&f.plane, f.threshold, r as usize, tick) {
                                None => {
                                    f.dropped += 1;
                                    sig = blank;
                                }
                                Some(0) => {}
                                Some(d) => {
                                    f.delayed.push(Delayed {
                                        due: tick + 1 + d,
                                        in_slot: (nid * delta + i) as u32,
                                        emit: tick,
                                        sig,
                                    });
                                    f.delayed_total += 1;
                                    sig = blank;
                                }
                            }
                        }
                    }
                    *dst = sig;
                    if *dst != blank {
                        *has = true;
                    }
                }
            }
        }
        self.fault = fault;
        // Phase 3: refresh the frontier counters wholesale — dense pays
        // O(N) per tick anyway (the saturated parallel path fuses these
        // recounts into its scan, which is how it wins).
        self.pending_inputs = self.has_input.iter().filter(|&&h| h).count();
        self.armed = self.wake_at.iter().filter(|&&w| w != NO_WAKE).count();
        // Phase 4: drain events in node order.
        for (n, buf) in self.event_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                events.extend(buf.drain(..).map(|e| (NodeId(n as u32), e)));
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;
    use crate::generators;

    /// Test automaton: forwards any received u32+1 on all out-ports after a
    /// fixed dwell; the root injects value 1 at tick 0. Exercises wake-up,
    /// dwell timers, and the deadline contract (the dwell is expressed as
    /// an absolute wake deadline, not a per-step countdown).
    #[derive(Clone)]
    struct Hopper {
        meta_is_root: bool,
        out_ports: Vec<usize>,
        pending: Option<(u64, u32)>, // (emit_at_tick, value)
        dwell: u64,
        seen: Vec<u32>,
        started: bool,
    }

    #[derive(Clone, Copy, PartialEq, Debug, Default)]
    struct U32Sig(u32);

    impl Automaton for Hopper {
        type Sig = U32Sig;
        type Event = u32;

        fn step(&mut self, ctx: &mut StepCtx<'_, U32Sig, u32>) {
            if self.meta_is_root && !self.started {
                self.started = true;
                self.pending = Some((ctx.tick, 1));
            }
            for s in ctx.inputs {
                if s.0 != 0 {
                    self.seen.push(s.0);
                    ctx.events.push(s.0);
                    if self.pending.is_none() && s.0 < 5 {
                        self.pending = Some((ctx.tick + self.dwell, s.0 + 1));
                    }
                }
            }
            if let Some((at, v)) = self.pending {
                if at <= ctx.tick {
                    for &o in &self.out_ports {
                        ctx.outputs[o] = U32Sig(v);
                    }
                    self.pending = None;
                } else {
                    ctx.request_restep_at(at);
                }
            }
        }
    }

    fn hopper_factory(meta: NodeMeta) -> Hopper {
        Hopper {
            meta_is_root: meta.is_root,
            out_ports: meta.out_connected.iter().map(|p| p.idx()).collect(),
            pending: None,
            dwell: 0,
            seen: Vec::new(),
            started: false,
        }
    }

    fn hopper_engine(mode: EngineMode, dwell: u64) -> Engine<Hopper> {
        hopper_engine_sharded(mode, dwell, None)
    }

    fn hopper_engine_sharded(
        mode: EngineMode,
        dwell: u64,
        shards: Option<usize>,
    ) -> Engine<Hopper> {
        let topo = generators::ring(4);
        Engine::with_root_sharded(&topo, mode, NodeId(0), shards, &mut |meta| Hopper {
            dwell,
            ..hopper_factory(meta)
        })
    }

    fn run_to_quiet(eng: &mut Engine<Hopper>) -> Vec<(NodeId, u32)> {
        let mut events = Vec::new();
        for _ in 0..200 {
            eng.tick(&mut events);
            if eng.is_quiet() {
                break;
            }
        }
        assert!(eng.is_quiet(), "hopper network should quiesce");
        events
    }

    #[test]
    fn message_hops_around_ring() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let events = run_to_quiet(&mut eng);
        // Value k arrives at node k (mod 4): 1@n1, 2@n2, 3@n3, 4@n0, 5@n1 stops.
        let vals: Vec<(u32, u32)> = events.iter().map(|&(n, v)| (n.0, v)).collect();
        assert_eq!(vals, vec![(1, 1), (2, 2), (3, 3), (0, 4), (1, 5)]);
    }

    #[test]
    fn all_modes_agree() {
        for dwell in [0u64, 2, 3] {
            let base = run_to_quiet(&mut hopper_engine(EngineMode::Dense, dwell));
            let sparse = run_to_quiet(&mut hopper_engine(EngineMode::Sparse, dwell));
            let par = run_to_quiet(&mut hopper_engine(EngineMode::Parallel, dwell));
            assert_eq!(base, sparse, "dense vs sparse, dwell {dwell}");
            assert_eq!(base, par, "dense vs parallel, dwell {dwell}");
        }
    }

    #[test]
    fn all_shard_counts_agree_with_dense() {
        // An explicit shard count forces event ticks through the worker
        // pool, so this sweep exercises the pooled step/scatter/merge
        // phases and cross-shard lanes, not just the inline driver.
        for dwell in [0u64, 2] {
            let base = run_to_quiet(&mut hopper_engine(EngineMode::Dense, dwell));
            for shards in [1usize, 2, 3, 7, 16] {
                let mut eng = hopper_engine_sharded(EngineMode::Parallel, dwell, Some(shards));
                assert_eq!(eng.shard_count(), shards);
                assert_eq!(eng.pool_workers(), shards - 1);
                let got = run_to_quiet(&mut eng);
                assert_eq!(
                    base, got,
                    "dense vs parallel/{shards} shards, dwell {dwell}"
                );
            }
        }
    }

    /// Broadcast automaton: every received value is re-emitted + 1 on all
    /// out-ports until a cap — floods the whole network, driving Parallel
    /// across the saturation threshold and back (frontier rebuild path).
    #[derive(Clone)]
    struct Flooder {
        meta_is_root: bool,
        out_ports: Vec<usize>,
        started: bool,
    }

    impl Automaton for Flooder {
        type Sig = U32Sig;
        type Event = u32;

        fn step(&mut self, ctx: &mut StepCtx<'_, U32Sig, u32>) {
            let mut best = 0;
            if self.meta_is_root && !self.started {
                self.started = true;
                best = 1;
            }
            for s in ctx.inputs {
                if s.0 != 0 && s.0 > best {
                    best = s.0;
                }
            }
            if best != 0 && best < 12 {
                ctx.events.push(best);
                for &o in &self.out_ports {
                    ctx.outputs[o] = U32Sig(best + 1);
                }
            }
        }
    }

    fn flooder_engine(mode: EngineMode, shards: Option<usize>) -> Engine<Flooder> {
        let topo = generators::random_sc(48, 2, 11);
        Engine::with_root_sharded(&topo, mode, NodeId(0), shards, &mut |meta| Flooder {
            meta_is_root: meta.is_root,
            out_ports: meta.out_connected.iter().map(|p| p.idx()).collect(),
            started: false,
        })
    }

    #[test]
    fn saturated_ticks_agree_with_dense_across_shard_counts() {
        let run = |mode, shards| {
            let mut eng = flooder_engine(mode, shards);
            let mut events = Vec::new();
            for _ in 0..40 {
                eng.tick(&mut events);
                if eng.is_quiet() {
                    break;
                }
            }
            assert!(eng.is_quiet());
            events
        };
        let base = run(EngineMode::Dense, None);
        assert!(!base.is_empty());
        assert_eq!(base, run(EngineMode::Sparse, None), "dense vs sparse");
        for shards in [1usize, 2, 7, 16] {
            assert_eq!(
                base,
                run(EngineMode::Parallel, Some(shards)),
                "dense vs parallel/{shards} shards across saturation"
            );
        }
    }

    #[test]
    fn dwell_delays_hops() {
        let mut fast = hopper_engine(EngineMode::Sparse, 0);
        let mut slow = hopper_engine(EngineMode::Sparse, 2);
        run_to_quiet(&mut fast);
        run_to_quiet(&mut slow);
        // 5 hops, each slowed by 2 extra ticks.
        assert!(slow.tick_count() >= fast.tick_count() + 8);
    }

    #[test]
    fn quiet_network_stays_quiet() {
        let mut eng = hopper_engine(EngineMode::Sparse, 1);
        run_to_quiet(&mut eng);
        let t = eng.tick_count();
        let mut events = Vec::new();
        for _ in 0..10 {
            eng.tick(&mut events);
        }
        assert!(events.is_empty());
        assert!(eng.is_quiet());
        assert_eq!(eng.tick_count(), t + 10);
        assert_eq!(eng.signals_in_flight(), 0);
    }

    #[test]
    fn run_until_stops_on_event() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let (events, fired) = eng.run_until(100, |&(_, v)| v == 3);
        assert!(fired);
        assert_eq!(events.last().map(|&(_, v)| v), Some(3));
    }

    #[test]
    fn run_until_times_out() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let (_, fired) = eng.run_until(2, |&(_, v)| v == 99);
        assert!(!fired);
    }

    #[test]
    fn signals_in_flight_counts_nonblank() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // root emitted 1 onto the wire
        assert_eq!(eng.signals_in_flight(), 1);
    }

    #[test]
    fn skip_lull_jumps_to_the_next_deadline_in_every_mode() {
        // dwell 5: after each hop the holder sleeps 5 ticks — a pure lull.
        for mode in EngineMode::ALL {
            let mut eng = hopper_engine(mode, 5);
            let mut events = Vec::new();
            eng.tick(&mut events); // tick 0: root emits 1
            eng.tick(&mut events); // tick 1: n1 receives, arms wake at 6
            assert!(!eng.is_quiet());
            // the coming ticks 2..=5 step nothing: one O(1) jump covers them
            let skipped = eng.skip_lull(u64::MAX);
            assert_eq!(skipped, 4, "{mode:?}");
            assert_eq!(eng.tick_count(), 6);
            // a cap inside the lull is honored exactly
            let mut capped = hopper_engine(mode, 5);
            let mut capped_events = Vec::new();
            capped.tick(&mut capped_events);
            capped.tick(&mut capped_events);
            assert_eq!(capped.skip_lull(4), 2, "{mode:?}");
            assert_eq!(capped.tick_count(), 4);
            // skipping never changes what happens, only how fast we get
            // there: the full hop chain still completes identically
            let mut tail = run_to_quiet(&mut eng);
            events.append(&mut tail);
            let vals: Vec<(u32, u32)> = events.iter().map(|&(n, v)| (n.0, v)).collect();
            assert_eq!(
                vals,
                vec![(1, 1), (2, 2), (3, 3), (0, 4), (1, 5)],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn skip_lull_on_a_quiet_network_skips_to_the_limit() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        run_to_quiet(&mut eng);
        let t = eng.tick_count();
        assert_eq!(eng.skip_lull(t + 1_000_000), 1_000_000);
        assert_eq!(eng.tick_count(), t + 1_000_000);
        assert!(eng.is_quiet());
        // a limit at or behind the clock is a no-op
        assert_eq!(eng.skip_lull(t), 0);
    }

    #[test]
    fn skip_lull_does_nothing_while_signals_are_in_flight() {
        let mut eng = hopper_engine(EngineMode::Sparse, 3);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 is in flight: the coming tick has work
        assert_eq!(eng.skip_lull(u64::MAX), 0);
    }

    /// ring(4) with the wire 0→1 moved from in-port 0 to in-port 1 of n1:
    /// same nodes and δ, one wire re-routed.
    fn ring4_rerouted() -> crate::Topology {
        use crate::ids::Port;
        let mut b = crate::TopologyBuilder::new(4, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(1)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(2), Port(0)).unwrap();
        b.connect(NodeId(2), Port(0), NodeId(3), Port(0)).unwrap();
        b.connect(NodeId(3), Port(0), NodeId(0), Port(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn apply_topology_invalidates_in_flight_signals_on_removed_wires() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 is in flight on wire 0→1 (in-port 0)
        assert_eq!(eng.signals_in_flight(), 1);
        eng.apply_topology(&ring4_rerouted());
        // the old wire is gone; its in-flight character with it
        assert_eq!(eng.signals_in_flight(), 0);
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "the lost character never arrives");
    }

    #[test]
    fn apply_topology_keeps_signals_on_surviving_wires() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let mut events = Vec::new();
        eng.tick(&mut events);
        assert_eq!(eng.signals_in_flight(), 1);
        // re-applying the identical wiring disturbs nothing
        eng.apply_topology(&generators::ring(4));
        assert_eq!(eng.signals_in_flight(), 1);
        let events = run_to_quiet(&mut eng);
        assert_eq!(events.len(), 5, "the full hop chain still completes");
    }

    #[test]
    fn repeated_rewires_preserve_wake_deadlines_and_reuse_scratch() {
        // A node mid-dwell keeps its wake across a rewire that does not
        // touch its ports, in every stepping discipline including the
        // pooled sharded one.
        let cases = [
            (EngineMode::Dense, None),
            (EngineMode::Sparse, None),
            (EngineMode::Parallel, Some(3)),
        ];
        for (mode, shards) in cases {
            let mut eng = hopper_engine_sharded(mode, 4, shards);
            let mut events = Vec::new();
            eng.tick(&mut events); // root emits 1
            eng.tick(&mut events); // n1 adopts it, arms wake at 1 + 4
            for _ in 0..10 {
                // rewiring back and forth exercises the reused scratch path
                eng.apply_topology(&ring4_rerouted());
                eng.apply_topology(&generators::ring(4));
            }
            let mut tail = run_to_quiet(&mut eng);
            events.append(&mut tail);
            let vals: Vec<u32> = events.iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, vec![1, 2, 3, 4, 5], "{mode:?} {shards:?}");
        }
    }

    #[test]
    fn apply_topology_with_splices_a_joining_automaton_in() {
        use crate::mutation::{MutationKind, TopologyMutation};
        let base = generators::ring(4);
        let (joined, change) = base
            .apply_rooted(
                &TopologyMutation {
                    kind: MutationKind::NodeJoin,
                    // splice the quiet wire 1→2 (the wire 0→1 carries the
                    // in-flight value and re-splicing it would drop it)
                    selector: 1,
                },
                NodeId(0),
            )
            .unwrap();
        let cases = [
            (EngineMode::Dense, None),
            (EngineMode::Sparse, None),
            (EngineMode::Parallel, Some(2)),
            (EngineMode::Parallel, Some(16)),
        ];
        let runs: Vec<Vec<(NodeId, u32)>> = cases
            .into_iter()
            .map(|(mode, shards)| {
                let mut eng = hopper_engine_sharded(mode, 0, shards);
                let mut events = Vec::new();
                eng.tick(&mut events);
                eng.apply_topology_with(&joined, change, &mut hopper_factory);
                assert_eq!(eng.num_nodes(), 5);
                let mut tail = run_to_quiet(&mut eng);
                events.append(&mut tail);
                events
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "all disciplines agree across a join");
        }
        // the newcomer (n4) took part in the hop chain
        assert!(
            runs[0].iter().any(|&(n, _)| n == NodeId(4)),
            "{:?}",
            runs[0]
        );
    }

    #[test]
    fn apply_topology_with_removes_a_leaving_automaton_and_its_signals() {
        use crate::mutation::{MembershipChange, MutationKind, TopologyMutation};
        let base = generators::ring(4);
        let applied = base.apply_or_fallback_rooted(
            &TopologyMutation {
                kind: MutationKind::NodeLeave,
                selector: 1,
            },
            NodeId(0),
        );
        assert_eq!(
            applied.membership,
            MembershipChange::Left { node: NodeId(1) }
        );
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 in flight on the wire 0→1
        assert_eq!(eng.signals_in_flight(), 1);
        eng.apply_topology_with(&applied.topology, applied.membership, &mut hopper_factory);
        assert_eq!(eng.num_nodes(), 3);
        // the in-flight character died with its wire into the departed node
        assert_eq!(eng.signals_in_flight(), 0);
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "the lost character never arrives");
    }

    #[test]
    fn all_modes_agree_across_a_rewire_boundary() {
        let runs: Vec<Vec<(NodeId, u32)>> =
            [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel]
                .into_iter()
                .map(|mode| {
                    let mut eng = hopper_engine(mode, 2);
                    let mut events = Vec::new();
                    for _ in 0..3 {
                        eng.tick(&mut events);
                    }
                    eng.apply_topology(&ring4_rerouted());
                    let mut tail = run_to_quiet(&mut eng);
                    events.append(&mut tail);
                    events
                })
                .collect();
        assert_eq!(runs[0], runs[1], "dense vs sparse across rewire");
        assert_eq!(runs[0], runs[2], "dense vs parallel across rewire");
    }

    #[test]
    fn inactive_fault_plane_installs_no_state() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        eng.set_fault_plane(FaultPlane::NONE);
        assert!(eng.fault.is_none());
        eng.set_fault_plane(FaultPlane {
            loss: 0.0,
            delay_min: 0,
            delay_max: 0,
            seed: 99,
        });
        assert!(eng.fault.is_none());
        let events = run_to_quiet(&mut eng);
        let base = run_to_quiet(&mut hopper_engine(EngineMode::Sparse, 0));
        assert_eq!(events, base, "a zero plane is bit-identical to none");
        assert_eq!(eng.fault_dropped(), 0);
        assert_eq!(eng.fault_delayed(), 0);
    }

    #[test]
    fn total_loss_kills_every_character() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        eng.set_fault_plane(FaultPlane {
            loss: 1.0,
            delay_min: 0,
            delay_max: 0,
            seed: 7,
        });
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "nothing survives a loss=1 plane");
        assert!(eng.fault_dropped() >= 1);
    }

    #[test]
    fn pure_delay_preserves_values_and_defers_them() {
        let run = |plane: Option<FaultPlane>| {
            let mut eng = hopper_engine(EngineMode::Sparse, 0);
            if let Some(p) = plane {
                eng.set_fault_plane(p);
            }
            let events = run_to_quiet(&mut eng);
            (events, eng.tick_count(), eng.fault_delayed())
        };
        let (base, base_ticks, _) = run(None);
        let (delayed, delayed_ticks, delayed_count) = run(Some(FaultPlane {
            loss: 0.0,
            delay_min: 2,
            delay_max: 2,
            seed: 3,
        }));
        let vals = |evs: &[(NodeId, u32)]| evs.iter().map(|&(n, v)| (n.0, v)).collect::<Vec<_>>();
        assert_eq!(vals(&base), vals(&delayed), "delay reorders nothing here");
        assert!(delayed_count >= 1, "every hop was delayed");
        assert!(
            delayed_ticks >= base_ticks + 2,
            "the chain finishes later under delay ({delayed_ticks} vs {base_ticks})"
        );
    }

    #[test]
    fn faulted_transcripts_agree_across_modes_and_shard_counts() {
        let plane = FaultPlane {
            loss: 0.25,
            delay_min: 1,
            delay_max: 3,
            seed: 42,
        };
        let run = |mode, shards| {
            let mut eng = flooder_engine(mode, shards);
            eng.set_fault_plane(plane);
            let mut events = Vec::new();
            for _ in 0..200 {
                eng.tick(&mut events);
                if eng.is_quiet() {
                    break;
                }
            }
            assert!(eng.is_quiet(), "{mode:?}/{shards:?} must quiesce");
            (
                events,
                eng.tick_count(),
                eng.fault_dropped(),
                eng.fault_delayed(),
            )
        };
        let base = run(EngineMode::Dense, None);
        assert!(base.2 > 0, "the plane dropped something");
        assert!(base.3 > 0, "the plane delayed something");
        assert_eq!(base, run(EngineMode::Sparse, None), "dense vs sparse");
        for shards in [1usize, 2, 7, 16] {
            assert_eq!(
                base,
                run(EngineMode::Parallel, Some(shards)),
                "dense vs parallel/{shards} under faults"
            );
        }
    }

    #[test]
    fn skip_lull_stops_at_a_delayed_delivery() {
        // dwell 0 hoppers + a long pure delay: after the root's emission
        // is taken off the wire, nothing is armed — only the delayed
        // character's due tick keeps the network alive.
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        eng.set_fault_plane(FaultPlane {
            loss: 0.0,
            delay_min: 20,
            delay_max: 20,
            seed: 1,
        });
        let mut events = Vec::new();
        eng.tick(&mut events); // root emits 1; the plane holds it back
        assert!(!eng.is_quiet(), "a delayed character counts as in flight");
        assert_eq!(eng.signals_in_flight(), 1);
        let skipped = eng.skip_lull(u64::MAX);
        assert!(skipped > 0 && skipped <= 21, "skip capped by the due tick");
        let tail = run_to_quiet(&mut eng);
        assert_eq!(tail.len(), 5, "the full hop chain still completes");
    }

    #[test]
    fn with_attempt_varies_the_seed_deterministically() {
        let p = FaultPlane {
            loss: 0.5,
            delay_min: 0,
            delay_max: 0,
            seed: 11,
        };
        assert_eq!(p.with_attempt(0), p);
        assert_ne!(p.with_attempt(1).seed, p.seed);
        assert_eq!(p.with_attempt(3), p.with_attempt(3));
        assert_ne!(p.with_attempt(1).seed, p.with_attempt(2).seed);
        assert_eq!(p.with_attempt(1).loss, p.loss);
    }

    #[test]
    fn rewire_destroys_delayed_characters() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        eng.set_fault_plane(FaultPlane {
            loss: 0.0,
            delay_min: 50,
            delay_max: 50,
            seed: 5,
        });
        let mut events = Vec::new();
        eng.tick(&mut events);
        assert_eq!(eng.signals_in_flight(), 1, "held by the plane");
        eng.apply_topology(&ring4_rerouted());
        assert_eq!(eng.signals_in_flight(), 0, "flushed by the rewire");
        assert_eq!(eng.fault_dropped(), 1, "flushed characters count dropped");
        let tail = run_to_quiet(&mut eng);
        assert!(tail.is_empty());
    }

    #[test]
    fn auto_sharding_stays_sequential_on_tiny_networks() {
        // ring(4) is far below a shard's worth of nodes: no pool.
        let eng = hopper_engine(EngineMode::Parallel, 0);
        assert_eq!(eng.shard_count(), 1);
        assert_eq!(eng.pool_workers(), 0);
        let sparse = hopper_engine(EngineMode::Sparse, 0);
        assert_eq!(sparse.shard_count(), 1);
        let dense = hopper_engine(EngineMode::Dense, 0);
        assert_eq!(dense.shard_count(), 0);
    }
}
