//! The synchronous lockstep engine (paper §1.1).
//!
//! "Processors synchronously, within a single global clock pulse, perform
//! the following actions in order: read in the inputs from each of their
//! in-ports, process their individual state changes, and prepare and
//! broadcast their outputs."
//!
//! [`Engine::tick`] implements exactly that: every automaton reads the
//! signals that were written onto its in-wires at the end of the previous
//! tick, steps, and writes signals onto its out-wires for the next tick.
//! Wires are double-buffered so all automata observe one consistent
//! snapshot regardless of step order.
//!
//! Three observationally-equivalent execution strategies are provided
//! (equivalence is enforced by tests and measured by experiment E8):
//!
//! * [`EngineMode::Dense`] — step every automaton every tick. The obvious
//!   reference implementation.
//! * [`EngineMode::Sparse`] — event-driven: step only the **active
//!   frontier** — automata with a pending input or a due wake deadline.
//!   The frontier is intrusive: it is updated at signal-write time (the
//!   scatter marks the receiving node) and via a timer heap fed by
//!   [`StepCtx::request_restep_at`], so a quiet tick costs O(active)
//!   rather than O(N). Protocol activity is usually localized, so this is
//!   the workhorse for large runs. Correctness relies on the *deadline
//!   contract* documented on [`Automaton`].
//! * [`EngineMode::Parallel`] — dense stepping fanned out over scoped OS
//!   threads. The synchronous model is embarrassingly data-parallel
//!   within a tick; this mode wins when floods keep most of the network
//!   active at once. Networks below [`PAR_MIN_NODES`] fall back to the
//!   sequential dense path (observationally identical by construction),
//!   since per-tick thread dispatch would dwarf the work.
//!
//! All three modes maintain the same frontier bookkeeping (`wake_at`
//! deadlines, pending-input flags, armed counters), so [`Engine::is_quiet`]
//! is O(1) and [`Engine::skip_lull`] fast-forwards deadline-driven lulls
//! identically regardless of mode — which is what keeps the modes
//! bit-identical even on timelines that skip ticks.

use crate::ids::{NodeId, Port};
use crate::mutation::MembershipChange;
use crate::topology::Topology;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static facts a processor knows about itself at power-on: which of its
/// ports are wired (in-/out-port awareness, §1.2.1) and whether it is the
/// root. The simulator-side `id` is provided **for tracing only** — protocol
/// logic must never branch on it (the paper's processors are anonymous).
#[derive(Clone, Debug)]
pub struct NodeMeta {
    /// Simulator-side identity. Tracing/diagnostics only.
    pub id: NodeId,
    /// True for the distinguished root processor.
    pub is_root: bool,
    /// `in_connected[i]` — is in-port `i` wired?
    pub in_connected: Vec<bool>,
    /// `out_connected[o]` — is out-port `o` wired?
    pub out_connected: Vec<bool>,
    /// The network constant δ.
    pub delta: u8,
}

/// Everything an automaton sees during one clock pulse.
pub struct StepCtx<'a, S, E> {
    /// The current global tick (first step happens at tick 0).
    pub tick: u64,
    /// One signal per in-port, indexed by in-port number. Unwired ports
    /// always read blank.
    pub inputs: &'a [S],
    /// One signal per out-port, indexed by out-port number; pre-blanked.
    /// Writing to an unwired port is allowed and discarded.
    pub outputs: &'a mut [S],
    /// Transcript events (only the root uses this in the GTD protocol, but
    /// the engine supports any node emitting).
    pub events: &'a mut Vec<E>,
    wake: &'a mut u64,
}

impl<S, E> StepCtx<'_, S, E> {
    /// Ask to be stepped on the next tick even if no input arrives.
    /// Equivalent to [`StepCtx::request_restep_at`]`(tick + 1)`.
    #[inline]
    pub fn request_restep(&mut self) {
        let at = self.tick + 1;
        if *self.wake > at {
            *self.wake = at;
        }
    }

    /// Ask to be stepped at tick `at` (clamped to the coming tick) even if
    /// no input arrives — the deadline form used by speed timers: a node
    /// holding a character that emerges at tick `d` sleeps until `d`
    /// instead of burning a no-op step on every intervening tick. Multiple
    /// requests within one step keep the earliest deadline.
    #[inline]
    pub fn request_restep_at(&mut self, at: u64) {
        let at = at.max(self.tick + 1);
        if *self.wake > at {
            *self.wake = at;
        }
    }

    /// Convenience: the input on in-port `p`.
    #[inline]
    pub fn input(&self, p: Port) -> &S {
        &self.inputs[p.idx()]
    }
}

/// A synchronous finite-state processor.
///
/// **Deadline contract** (required by [`EngineMode::Sparse`] and by
/// [`Engine::skip_lull`]): if all of an automaton's inputs are blank and
/// its most recent step requested no wake ([`StepCtx::request_restep_at`])
/// — or requested one that has not yet arrived — then stepping it must
/// not change its observable state and must emit only blank outputs,
/// except that it may re-request a wake no earlier than the original.
/// The dense modes step every automaton every tick and rely on those
/// extra steps being no-ops; the sparse mode skips them entirely; both
/// must agree, and the dense/sparse equivalence tests in this crate and
/// downstream enforce it.
pub trait Automaton: Send {
    /// The wire alphabet — one constant-size character per wire per tick.
    /// `Default` is the blank character b of the paper. `Copy` keeps the
    /// routing phase a plain word move: the engine never clones or
    /// allocates a signal on the hot path.
    type Sig: Copy + Default + PartialEq + Send + Sync;
    /// Transcript event type (what the root pipes to its master computer).
    type Event: Send;

    /// One global clock pulse: read inputs, change state, write outputs.
    fn step(&mut self, ctx: &mut StepCtx<'_, Self::Sig, Self::Event>);

    /// The network was rewired around this processor
    /// ([`Engine::apply_topology`]): `meta` carries the new port
    /// connectivity masks (§1.2.1 port awareness tracks the physical
    /// wiring). Called between ticks, only on processors whose masks
    /// changed; the default ignores the event.
    fn on_rewire(&mut self, meta: &NodeMeta) {
        let _ = meta;
    }

    /// This processor was spliced into a *running* network
    /// ([`Engine::apply_topology_with`] with a
    /// [`MembershipChange::Joined`]): called once on the freshly built
    /// automaton, between ticks, before its first step. `meta` is the
    /// same power-on view the factory received; the newcomer is also
    /// scheduled for a step, so it powers on at the next tick in every
    /// engine mode. The default ignores the event.
    fn on_join(&mut self, meta: &NodeMeta) {
        let _ = meta;
    }
}

/// Execution strategy. See module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineMode {
    /// Step every node every tick, sequentially.
    Dense,
    /// Step only the active frontier (event-driven), sequentially.
    Sparse,
    /// Step every node every tick, fanned out over scoped threads.
    Parallel,
}

impl EngineMode {
    /// Every mode, in canonical order (CLI listings, campaign grids).
    pub const ALL: [EngineMode; 3] = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel];

    /// Stable lowercase name (round-trips through [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Dense => "dense",
            EngineMode::Sparse => "sparse",
            EngineMode::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        EngineMode::ALL
            .into_iter()
            .find(|m| m.name() == s.trim())
            .ok_or_else(|| format!("unknown engine mode {s:?} (known: dense, sparse, parallel)"))
    }
}

const NO_ROUTE: u32 = u32::MAX;

/// Sentinel "no wake requested" deadline.
const NO_WAKE: u64 = u64::MAX;

/// Timing-wheel horizon: wakes within this many ticks of the clock are
/// indexed by a per-tick slot vector instead of the heap. Every dwell the
/// protocol uses (speed-1 = 3 ticks/hop) fits comfortably.
const WHEEL: usize = 8;

/// Below this node count [`EngineMode::Parallel`] runs the sequential
/// dense path: spawning threads every tick costs more than the tick.
pub const PAR_MIN_NODES: usize = 512;

/// Worker count for the parallel mode: all available cores, but at least
/// ~256 nodes of work per worker.
fn par_workers(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    cores.clamp(1, n.div_ceil(256).max(1))
}

/// The lockstep simulator. Generic over the automaton type so the same
/// engine runs the GTD protocol, unit-test probes, and ablation automata.
///
/// Steady-state ticks are allocation-free in the sequential modes: all
/// per-tick scratch (`event_bufs`, the step list, the frontier worklist,
/// the timer heap) is reused across ticks, and topology mutations reuse
/// the route-table rebuild buffers (`apply_scratch`).
pub struct Engine<A: Automaton> {
    mode: EngineMode,
    delta: usize,
    root: NodeId,
    tick: u64,
    nodes: Vec<A>,
    /// `in_buf[n*δ + i]` — signal visible on in-port `i` of node `n` this tick.
    in_buf: Vec<A::Sig>,
    /// `out_buf[n*δ + o]` — signal written on out-port `o` of node `n`.
    out_buf: Vec<A::Sig>,
    /// For each in-slot, the out-slot feeding it (dense/parallel gather).
    route_in: Vec<u32>,
    /// For each out-slot, the in-slot it feeds (sparse scatter).
    route_out: Vec<u32>,
    /// `wake_at[n]` — earliest tick node `n` asked to be stepped at
    /// ([`NO_WAKE`] = no request). The authoritative deadline store; the
    /// timer heap is only an index over it.
    wake_at: Vec<u64>,
    /// Nodes with a non-blank signal delivered for the coming tick.
    has_input: Vec<bool>,
    /// Count of `true` entries in `has_input` (O(1) quiet checks).
    pending_inputs: usize,
    /// Count of non-[`NO_WAKE`] entries in `wake_at`.
    armed: usize,
    /// Near-deadline timing wheel (sparse mode): `wheel[t % WHEEL]` holds
    /// nodes whose wake was scheduled for tick `t` within the next
    /// [`WHEEL`] ticks — every speed-timer dwell of the protocol fits, so
    /// the common re-arm is a plain `Vec` push instead of a heap
    /// operation. Entries are lazily validated against `wake_at` when
    /// their slot drains, so stale entries (nodes re-armed or cleared
    /// since) cost one comparison.
    wheel: [Vec<u32>; WHEEL],
    /// Lazy-deletion min-heap of `(wake tick, node)` — the sparse mode's
    /// timer index for wakes beyond the wheel horizon. Entries whose node
    /// has since been re-armed or cleared are dropped when they surface.
    /// Between the wheel and the heap, whenever `wake_at[n] != NO_WAKE`
    /// there is an entry covering exactly that tick.
    timers: BinaryHeap<Reverse<(u64, u32)>>,
    /// Nodes whose `has_input` flag flipped on during the last scatter —
    /// the input half of the coming tick's frontier (sparse mode).
    frontier: Vec<u32>,
    /// Per-node event buffers (kept separate for parallel stepping).
    event_bufs: Vec<Vec<A::Event>>,
    /// Scratch: the step list of the current tick (sorted node ids).
    stepped: Vec<u32>,
    /// Route-table and invalidation rebuild buffers for
    /// [`Engine::apply_topology_with`], reused across mutations so
    /// mutation-dense schedules don't reallocate per event.
    apply_scratch: ApplyScratch<A::Sig>,
}

/// Reusable buffers for the atomic rewire path.
struct ApplyScratch<S> {
    route_in: Vec<u32>,
    route_out: Vec<u32>,
    in_buf: Vec<S>,
    wake_at: Vec<u64>,
    inv: Vec<Option<usize>>,
}

impl<S> Default for ApplyScratch<S> {
    fn default() -> Self {
        ApplyScratch {
            route_in: Vec::new(),
            route_out: Vec::new(),
            in_buf: Vec::new(),
            wake_at: Vec::new(),
            inv: Vec::new(),
        }
    }
}

/// Fill `route_in`/`route_out` (pre-sized to `n*δ`, all [`NO_ROUTE`])
/// from the wiring of `topo`.
fn fill_routes(topo: &Topology, delta: usize, route_in: &mut [u32], route_out: &mut [u32]) {
    for u in topo.node_ids() {
        for (o, ep) in topo.out_edges(u) {
            let out_slot = u.idx() * delta + o.idx();
            let in_slot = ep.node.idx() * delta + ep.port.idx();
            route_out[out_slot] = in_slot as u32;
            route_in[in_slot] = out_slot as u32;
        }
    }
}

impl<A: Automaton> Engine<A> {
    /// Build an engine over `topo`, constructing one automaton per node via
    /// `factory`. Node 0 is the root by convention (callers that want a
    /// different root relabel their topology).
    pub fn new(topo: &Topology, mode: EngineMode, mut factory: impl FnMut(NodeMeta) -> A) -> Self {
        Self::with_root(topo, mode, NodeId(0), &mut factory)
    }

    /// Like [`Engine::new`] but with an explicit root processor.
    pub fn with_root(
        topo: &Topology,
        mode: EngineMode,
        root: NodeId,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) -> Self {
        assert!(root.idx() < topo.num_nodes(), "root must exist");
        let n = topo.num_nodes();
        let delta = topo.delta() as usize;
        let mut nodes = Vec::with_capacity(n);
        for id in topo.node_ids() {
            nodes.push(factory(NodeMeta {
                id,
                is_root: id == root,
                in_connected: topo.in_connected(id),
                out_connected: topo.out_connected(id),
                delta: topo.delta(),
            }));
        }
        let mut route_in = vec![NO_ROUTE; n * delta];
        let mut route_out = vec![NO_ROUTE; n * delta];
        fill_routes(topo, delta, &mut route_in, &mut route_out);
        Engine {
            mode,
            delta,
            root,
            tick: 0,
            nodes,
            in_buf: vec![A::Sig::default(); n * delta],
            out_buf: vec![A::Sig::default(); n * delta],
            route_in,
            route_out,
            // Every node must be stepped at least once so initiators (the
            // root) can start protocols without external input: arm every
            // wake for tick 0.
            wake_at: vec![0; n],
            has_input: vec![false; n],
            pending_inputs: 0,
            armed: n,
            // tick 0's wheel slot holds every node (the power-on step);
            // the dense modes step everyone unconditionally and never
            // drain the wheel, so only sparse indexes it.
            wheel: std::array::from_fn(|i| {
                if i == 0 && mode == EngineMode::Sparse {
                    (0..n as u32).collect()
                } else {
                    Vec::new()
                }
            }),
            timers: BinaryHeap::new(),
            frontier: Vec::new(),
            event_bufs: (0..n).map(|_| Vec::new()).collect(),
            stepped: Vec::with_capacity(n),
            apply_scratch: ApplyScratch::default(),
        }
    }

    /// Number of automata.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global ticks elapsed.
    #[inline]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Immutable view of an automaton (invariant checks, tracing).
    #[inline]
    pub fn node(&self, n: NodeId) -> &A {
        &self.nodes[n.idx()]
    }

    /// Immutable view of all automata.
    #[inline]
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Index node `n`'s wake at tick `wake` into the sparse timer
    /// structures: near wakes go to the wheel slot that drains at exactly
    /// that tick, far ones to the overflow heap. Caller has already
    /// stored `wake` in `wake_at` (which is what validates entries when
    /// they surface). The dense modes step every node anyway and consult
    /// `wake_at` directly, so indexing there would only accumulate
    /// entries nothing ever drains.
    #[inline]
    fn schedule_wake(&mut self, n: u32, wake: u64) {
        if self.mode != EngineMode::Sparse {
            return;
        }
        if wake.saturating_sub(self.tick) < WHEEL as u64 {
            self.wheel[(wake % WHEEL as u64) as usize].push(n);
        } else {
            self.timers.push(Reverse((wake, n)));
        }
    }

    /// Arm node `n`'s wake for tick `at` (keeping any earlier deadline).
    fn arm(&mut self, n: usize, at: u64) {
        if self.wake_at[n] <= at {
            return;
        }
        if self.wake_at[n] == NO_WAKE {
            self.armed += 1;
        }
        self.wake_at[n] = at;
        self.schedule_wake(n as u32, at);
    }

    /// Mutable access to one automaton — the "outside source" of the paper
    /// nudging a processor (e.g. the master computer restarting the root
    /// for a re-map). The node is also scheduled for a step so the nudge
    /// takes effect even in sparse mode.
    pub fn node_mut(&mut self, n: NodeId) -> &mut A {
        self.arm(n.idx(), self.tick);
        &mut self.nodes[n.idx()]
    }

    /// Atomically rewire the running network to `new_topo` between ticks
    /// — the live half of a topology mutation (paper §1: "the topology …
    /// might change").
    ///
    /// * Route tables are rebuilt from the new wiring (into buffers reused
    ///   across mutations — no per-event allocation once warmed).
    /// * In-flight signals are invalidated on every wire that was removed
    ///   or re-sourced: a character already delivered for the coming tick
    ///   survives only if the identical wire (same out-slot → same
    ///   in-slot) still exists.
    /// * Every automaton whose port connectivity changed receives
    ///   [`Automaton::on_rewire`] with its new [`NodeMeta`] and is
    ///   scheduled for a step, so all three engine modes observe the
    ///   mutation on the same tick and stay observationally identical.
    ///
    /// The processor count must be preserved (δ always is); for membership
    /// changes use [`Engine::apply_topology_with`].
    pub fn apply_topology(&mut self, new_topo: &Topology) {
        assert_eq!(
            new_topo.num_nodes(),
            self.nodes.len(),
            "apply_topology preserves the node count (use apply_topology_with)"
        );
        self.apply_topology_with(new_topo, MembershipChange::None, &mut |_| {
            unreachable!("no processor joins without a membership change")
        });
    }

    /// [`Engine::apply_topology`] generalized to membership changes: the
    /// running network is atomically rewired to `new_topo` between ticks
    /// while a processor joins or leaves.
    ///
    /// * [`MembershipChange::Joined`] — `factory` builds the newcomer's
    ///   automaton from its power-on [`NodeMeta`]; it then receives
    ///   [`Automaton::on_join`] and is scheduled, so it powers on at the
    ///   next tick identically in all three engine modes.
    /// * [`MembershipChange::Left`] — the departed automaton is removed
    ///   (its in-flight signals and pending inputs with it) and every
    ///   higher processor id shifts down by one, mirroring
    ///   [`MembershipChange::relabel`]. The engine's root must survive
    ///   (session drivers guarantee it: the collector's host never
    ///   leaves); its id is re-tracked automatically.
    ///
    /// In-flight characters survive exactly on wires that connect the same
    /// *physical* processors through the same ports on both sides of the
    /// change; everything else is invalidated, as for a plain rewire.
    pub fn apply_topology_with(
        &mut self,
        new_topo: &Topology,
        change: MembershipChange,
        factory: &mut dyn FnMut(NodeMeta) -> A,
    ) {
        let old_n = self.nodes.len();
        let delta = self.delta;
        assert_eq!(
            new_topo.delta() as usize,
            delta,
            "mutations preserve the port bound"
        );
        let new_n = new_topo.num_nodes();
        let mut scratch = std::mem::take(&mut self.apply_scratch);
        // new-id → old-id of the same physical processor (None: newcomer).
        let inv = &mut scratch.inv;
        inv.clear();
        match change {
            MembershipChange::None => {
                assert_eq!(new_n, old_n, "membership change says the count is fixed");
                inv.extend((0..old_n).map(Some));
            }
            MembershipChange::Joined { node } => {
                assert_eq!(new_n, old_n + 1, "a join grows the network by one");
                assert_eq!(node.idx(), old_n, "the newcomer takes the highest id");
                inv.extend((0..new_n).map(|i| (i < old_n).then_some(i)));
            }
            MembershipChange::Left { node } => {
                assert_eq!(new_n, old_n - 1, "a leave shrinks the network by one");
                let x = node.idx();
                assert!(x < old_n, "departed processor must exist");
                assert_ne!(x, self.root.idx(), "the root cannot leave");
                inv.extend((0..new_n).map(|i| Some(if i < x { i } else { i + 1 })));
            }
        }
        let route_in = &mut scratch.route_in;
        let route_out = &mut scratch.route_out;
        route_in.clear();
        route_in.resize(new_n * delta, NO_ROUTE);
        route_out.clear();
        route_out.resize(new_n * delta, NO_ROUTE);
        fill_routes(new_topo, delta, route_in, route_out);
        // Carry in-flight characters across wires that connect the same
        // physical processors through the same ports; every removed or
        // re-sourced wire loses its character.
        let blank = A::Sig::default();
        let in_buf = &mut scratch.in_buf;
        in_buf.clear();
        in_buf.resize(new_n * delta, A::Sig::default());
        for (slot, dst) in in_buf.iter_mut().enumerate() {
            let r = route_in[slot];
            if r == NO_ROUTE {
                continue;
            }
            let (Some(old_dst), Some(old_src)) = (inv[slot / delta], inv[r as usize / delta])
            else {
                continue; // a wire touching the newcomer carries nothing yet
            };
            let old_in_slot = old_dst * delta + slot % delta;
            let old_out_slot = (old_src * delta + r as usize % delta) as u32;
            if self.route_in[old_in_slot] == old_out_slot && self.in_buf[old_in_slot] != blank {
                *dst = self.in_buf[old_in_slot];
            }
        }
        // Splice the automaton tables into the new indexing.
        match change {
            MembershipChange::None => {}
            MembershipChange::Joined { node } => {
                let meta = NodeMeta {
                    id: node,
                    is_root: false,
                    in_connected: new_topo.in_connected(node),
                    out_connected: new_topo.out_connected(node),
                    delta: new_topo.delta(),
                };
                let mut automaton = factory(meta.clone());
                automaton.on_join(&meta);
                self.nodes.push(automaton);
                self.event_bufs.push(Vec::new());
            }
            MembershipChange::Left { node } => {
                let x = node.idx();
                self.nodes.remove(x);
                self.event_bufs.remove(x);
                if self.root.idx() > x {
                    self.root = NodeId(self.root.0 - 1);
                }
            }
        }
        // Carry wake deadlines across the relabeling; the newcomer's
        // power-on step is armed for the coming tick.
        let wake_at = &mut scratch.wake_at;
        wake_at.clear();
        wake_at.extend(inv.iter().map(|old| match old {
            Some(old_id) => self.wake_at[*old_id],
            None => self.tick,
        }));
        // Notify surviving processors whose port awareness changed and
        // schedule them so sparse mode steps them exactly when dense would.
        for (new_id, &old) in inv.iter().enumerate() {
            let Some(old_id) = old else { continue };
            let changed = (0..delta).any(|p| {
                let (old_slot, new_slot) = (old_id * delta + p, new_id * delta + p);
                (self.route_out[old_slot] == NO_ROUTE) != (route_out[new_slot] == NO_ROUTE)
                    || (self.route_in[old_slot] == NO_ROUTE) != (route_in[new_slot] == NO_ROUTE)
            });
            if changed {
                let id = NodeId(new_id as u32);
                self.nodes[new_id].on_rewire(&NodeMeta {
                    id,
                    is_root: id == self.root,
                    in_connected: new_topo.in_connected(id),
                    out_connected: new_topo.out_connected(id),
                    delta: new_topo.delta(),
                });
                wake_at[new_id] = wake_at[new_id].min(self.tick);
            }
        }
        // Swap the rebuilt tables in; the displaced buffers become the
        // next mutation's scratch.
        std::mem::swap(&mut self.route_in, route_in);
        std::mem::swap(&mut self.route_out, route_out);
        std::mem::swap(&mut self.in_buf, in_buf);
        std::mem::swap(&mut self.wake_at, wake_at);
        self.apply_scratch = scratch;
        self.out_buf.clear();
        self.out_buf.resize(new_n * delta, A::Sig::default());
        // Rebuild the frontier bookkeeping for the new indexing.
        self.has_input.clear();
        self.has_input.resize(new_n, false);
        self.frontier.clear();
        self.pending_inputs = 0;
        for (n, chunk) in self.in_buf.chunks(delta).enumerate() {
            if chunk.iter().any(|s| *s != blank) {
                self.has_input[n] = true;
                self.pending_inputs += 1;
                self.frontier.push(n as u32);
            }
        }
        self.timers.clear();
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.armed = 0;
        for n in 0..new_n {
            let w = self.wake_at[n];
            if w != NO_WAKE {
                self.armed += 1;
                self.schedule_wake(n as u32, w);
            }
        }
        self.stepped.clear();
    }

    /// True when nothing is pending: no node has an armed wake deadline
    /// and no non-blank signal is in flight. O(1) — the frontier counters
    /// make the scan of the old implementation unnecessary. A quiet
    /// network stays quiet forever.
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.pending_inputs == 0 && self.armed == 0
    }

    /// Census of non-blank signals currently in flight (delivered for the
    /// coming tick). Used by the Lemma 4.2 cleanliness experiments.
    pub fn signals_in_flight(&self) -> usize {
        let blank = A::Sig::default();
        self.in_buf.iter().filter(|s| **s != blank).count()
    }

    /// Fast-forward a quiet network by `ticks` clock pulses. A quiet
    /// network stays quiet (the deadline contract makes every step a
    /// no-op), so only the clock advances — this lets dynamic timelines
    /// idle to a far-future mutation tick in O(1). Panics if the network
    /// is not quiet.
    pub fn skip_quiet_ticks(&mut self, ticks: u64) {
        assert!(self.is_quiet(), "can only skip ticks on a quiet network");
        self.tick += ticks;
    }

    /// The earliest armed wake deadline, if any. Drops stale timer-heap
    /// entries as they surface (amortized O(1) in sparse mode; a linear
    /// scan in the dense modes, which pay O(N) per tick anyway).
    fn next_wake(&mut self) -> Option<u64> {
        match self.mode {
            EngineMode::Sparse => {
                // Earliest genuine wake on the wheel: scan the coming
                // WHEEL slots in tick order; the first slot holding a
                // validated entry is exact (an earlier genuine wake would
                // have a validated entry in an earlier slot or the heap).
                let mut best = None;
                for d in 0..WHEEL as u64 {
                    let t_cand = self.tick + d;
                    let slot = (t_cand % WHEEL as u64) as usize;
                    if self.wheel[slot]
                        .iter()
                        .any(|&n| self.wake_at[n as usize] <= t_cand)
                    {
                        best = Some(t_cand);
                        break;
                    }
                }
                // Earliest genuine far wake: drop stale heap tops.
                while let Some(&Reverse((at, n))) = self.timers.peek() {
                    if self.wake_at[n as usize] == at {
                        best = Some(best.map_or(at, |b: u64| b.min(at)));
                        break;
                    }
                    self.timers.pop();
                }
                best
            }
            _ => self.wake_at.iter().copied().filter(|&w| w != NO_WAKE).min(),
        }
    }

    /// Fast-forward a **lull**: if the coming tick would step nothing (no
    /// signal in flight, no wake deadline due), jump the clock straight to
    /// the earliest armed deadline — or to `limit`, whichever is smaller —
    /// in O(1). Generalizes [`Engine::skip_quiet_ticks`]: a fully quiet
    /// network skips to `limit`; a network merely waiting out speed-timer
    /// dwells skips to the next deadline. Skipped ticks are pure no-ops by
    /// the deadline contract, and the decision depends only on
    /// mode-uniform frontier state, so timelines that skip stay
    /// bit-identical across all three engine modes. Returns the number of
    /// ticks skipped (0 when the coming tick has work or `limit` is not
    /// ahead of the clock).
    pub fn skip_lull(&mut self, limit: u64) -> u64 {
        if self.pending_inputs > 0 || limit <= self.tick {
            return 0;
        }
        let target = match self.next_wake() {
            Some(w) => w.min(limit),
            None => limit,
        };
        if target <= self.tick {
            return 0;
        }
        let skipped = target - self.tick;
        self.tick = target;
        skipped
    }

    /// Advance one global clock tick. Events emitted by nodes are appended
    /// to `events` in ascending node order (deterministic across modes).
    pub fn tick(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        match self.mode {
            EngineMode::Dense => self.tick_dense(events, false),
            EngineMode::Parallel => self.tick_dense(events, true),
            EngineMode::Sparse => self.tick_sparse(events),
        }
        self.tick += 1;
    }

    /// Run until `stop` returns true for some emitted event, or until the
    /// network goes quiet, or until `max_ticks` elapse. Returns all events
    /// emitted and whether `stop` fired.
    pub fn run_until(
        &mut self,
        max_ticks: u64,
        mut stop: impl FnMut(&(NodeId, A::Event)) -> bool,
    ) -> (Vec<(NodeId, A::Event)>, bool) {
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        for _ in 0..max_ticks {
            scratch.clear();
            self.tick(&mut scratch);
            let mut fired = false;
            for ev in scratch.drain(..) {
                if stop(&ev) {
                    fired = true;
                }
                all.push(ev);
            }
            if fired {
                return (all, true);
            }
            if self.is_quiet() {
                break;
            }
        }
        (all, false)
    }

    fn tick_dense(&mut self, events: &mut Vec<(NodeId, A::Event)>, parallel: bool) {
        let n = self.nodes.len();
        let delta = self.delta;
        let tick = self.tick;
        let parallel = parallel && n >= PAR_MIN_NODES;
        // Phase 1: step everyone against the in_buf snapshot. Each node's
        // wake slot is reset and re-requested within its step (the
        // deadline contract keeps re-requests idempotent).
        let in_buf = &self.in_buf;
        let step_one = |idx: usize,
                        node: &mut A,
                        out_chunk: &mut [A::Sig],
                        evs: &mut Vec<A::Event>,
                        wake: &mut u64| {
            for s in out_chunk.iter_mut() {
                *s = A::Sig::default();
            }
            *wake = NO_WAKE;
            let mut ctx = StepCtx {
                tick,
                inputs: &in_buf[idx * delta..(idx + 1) * delta],
                outputs: out_chunk,
                events: evs,
                wake,
            };
            node.step(&mut ctx);
        };
        if parallel {
            // Fan contiguous node ranges out over scoped threads: each
            // worker owns disjoint slices of every per-node table, while
            // all share the immutable in_buf snapshot.
            let per = n.div_ceil(par_workers(n));
            std::thread::scope(|scope| {
                let mut nodes = self.nodes.as_mut_slice();
                let mut outs = self.out_buf.as_mut_slice();
                let mut evs = self.event_bufs.as_mut_slice();
                let mut wakes = self.wake_at.as_mut_slice();
                let mut base = 0usize;
                let step_one = &step_one;
                while !nodes.is_empty() {
                    let take = per.min(nodes.len());
                    let (node_c, node_rest) = nodes.split_at_mut(take);
                    let (out_c, out_rest) = outs.split_at_mut(take * delta);
                    let (ev_c, ev_rest) = evs.split_at_mut(take);
                    let (wake_c, wake_rest) = wakes.split_at_mut(take);
                    scope.spawn(move || {
                        for (j, ((node, evbuf), wake)) in node_c
                            .iter_mut()
                            .zip(ev_c.iter_mut())
                            .zip(wake_c.iter_mut())
                            .enumerate()
                        {
                            step_one(
                                base + j,
                                node,
                                &mut out_c[j * delta..(j + 1) * delta],
                                evbuf,
                                wake,
                            );
                        }
                    });
                    nodes = node_rest;
                    outs = out_rest;
                    evs = ev_rest;
                    wakes = wake_rest;
                    base += take;
                }
            });
        } else {
            for (idx, ((node, out_chunk), (evs, wake))) in self
                .nodes
                .iter_mut()
                .zip(self.out_buf.chunks_mut(delta))
                .zip(self.event_bufs.iter_mut().zip(self.wake_at.iter_mut()))
                .enumerate()
            {
                step_one(idx, node, out_chunk, evs, wake);
            }
        }
        // Phase 2: gather — route every wired out-slot to its in-slot by
        // plain copy (the `Copy` bound keeps this a word move, never a
        // clone or an allocation).
        let out_buf = &self.out_buf;
        let route_in = &self.route_in;
        let blank = A::Sig::default();
        let gather_one = |in_slot: usize, dst: &mut A::Sig, has: &mut bool| {
            let r = route_in[in_slot];
            if r == NO_ROUTE {
                if *dst != blank {
                    *dst = A::Sig::default();
                }
            } else {
                *dst = out_buf[r as usize];
                if *dst != blank {
                    *has = true;
                }
            }
        };
        if parallel {
            let per = n.div_ceil(par_workers(n));
            std::thread::scope(|scope| {
                let mut ins = self.in_buf.as_mut_slice();
                let mut has = self.has_input.as_mut_slice();
                let mut base = 0usize;
                let gather_one = &gather_one;
                while !ins.is_empty() {
                    let take = (per * delta).min(ins.len());
                    let (in_c, in_rest) = ins.split_at_mut(take);
                    let (has_c, has_rest) = has.split_at_mut(take / delta);
                    scope.spawn(move || {
                        for (k, (chunk, h)) in
                            in_c.chunks_mut(delta).zip(has_c.iter_mut()).enumerate()
                        {
                            *h = false;
                            for (i, dst) in chunk.iter_mut().enumerate() {
                                gather_one((base + k) * delta + i, dst, h);
                            }
                        }
                    });
                    ins = in_rest;
                    has = has_rest;
                    base += take / delta;
                }
            });
        } else {
            for (nid, (chunk, has)) in self
                .in_buf
                .chunks_mut(delta)
                .zip(self.has_input.iter_mut())
                .enumerate()
            {
                *has = false;
                for (i, dst) in chunk.iter_mut().enumerate() {
                    gather_one(nid * delta + i, dst, has);
                }
            }
        }
        // Phase 3: refresh the frontier counters wholesale — the dense
        // modes already pay O(N) per tick, and skipping the timer heap
        // here keeps their inner loops identical to the pre-frontier
        // engine (next_wake falls back to a scan in these modes).
        self.pending_inputs = self.has_input.iter().filter(|&&h| h).count();
        self.armed = self.wake_at.iter().filter(|&&w| w != NO_WAKE).count();
        // Phase 4: drain events in node order.
        for (n, buf) in self.event_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                events.extend(buf.drain(..).map(|e| (NodeId(n as u32), e)));
            }
        }
    }

    fn tick_sparse(&mut self, events: &mut Vec<(NodeId, A::Event)>) {
        let delta = self.delta;
        let tick = self.tick;
        let blank = A::Sig::default();
        // Phase 1: the step list is the active frontier — nodes with a
        // pending input (marked at signal-write time by the previous
        // tick's scatter) plus nodes whose wake deadline is due (surfaced
        // by the timer heap; stale entries are dropped). O(active), never
        // a scan over all N nodes.
        self.stepped.clear();
        self.stepped.append(&mut self.frontier);
        // Drain this tick's wheel slot (near wakes land in the slot that
        // drains at exactly their tick; entries re-armed since are stale
        // and fail validation), then any due far wakes off the heap.
        let slot = (tick % WHEEL as u64) as usize;
        let mut due = std::mem::take(&mut self.wheel[slot]);
        for n in due.drain(..) {
            if self.wake_at[n as usize] <= tick {
                self.stepped.push(n);
            }
        }
        self.wheel[slot] = due;
        while let Some(&Reverse((at, n))) = self.timers.peek() {
            if at > tick {
                break;
            }
            self.timers.pop();
            if self.wake_at[n as usize] <= tick {
                self.stepped.push(n);
            }
        }
        // Events must drain in ascending node order for cross-mode
        // determinism; dedup removes input+wake double entries.
        self.stepped.sort_unstable();
        self.stepped.dedup();
        // Phase 2: step the frontier. out_buf is all-blank between ticks
        // (invariant), so stepped nodes write into clean slices.
        for &n in &self.stepped {
            let n = n as usize;
            let old_wake = self.wake_at[n];
            let mut wake = NO_WAKE;
            let mut ctx = StepCtx {
                tick,
                inputs: &self.in_buf[n * delta..(n + 1) * delta],
                outputs: &mut self.out_buf[n * delta..(n + 1) * delta],
                events: &mut self.event_bufs[n],
                wake: &mut wake,
            };
            self.nodes[n].step(&mut ctx);
            if wake != old_wake {
                match (old_wake == NO_WAKE, wake == NO_WAKE) {
                    (true, false) => self.armed += 1,
                    (false, true) => self.armed -= 1,
                    _ => {}
                }
                self.wake_at[n] = wake;
                if wake != NO_WAKE {
                    // inline schedule_wake: `self` is field-borrowed here
                    if wake - tick < WHEEL as u64 {
                        self.wheel[(wake % WHEEL as u64) as usize].push(n as u32);
                    } else {
                        self.timers.push(Reverse((wake, n as u32)));
                    }
                }
            }
        }
        // Phase 3: clear consumed inputs.
        for &n in &self.stepped {
            let n = n as usize;
            if self.has_input[n] {
                for s in &mut self.in_buf[n * delta..(n + 1) * delta] {
                    if *s != blank {
                        *s = A::Sig::default();
                    }
                }
                self.has_input[n] = false;
                self.pending_inputs -= 1;
            }
        }
        // Phase 4: scatter the outputs of stepped nodes by move, restoring
        // the all-blank out_buf invariant as we go. This is where the
        // frontier is intrusive: delivering a character marks the
        // receiving node for the coming tick, so no later scan is needed.
        for &n in &self.stepped {
            let n = n as usize;
            for o in 0..delta {
                let out_slot = n * delta + o;
                let sig = self.out_buf[out_slot];
                if sig == blank {
                    continue;
                }
                self.out_buf[out_slot] = A::Sig::default();
                let r = self.route_out[out_slot];
                if r != NO_ROUTE {
                    let in_slot = r as usize;
                    self.in_buf[in_slot] = sig;
                    let dst = in_slot / delta;
                    if !self.has_input[dst] {
                        self.has_input[dst] = true;
                        self.pending_inputs += 1;
                        self.frontier.push(dst as u32);
                    }
                }
            }
        }
        // Phase 5: drain events in node order (step list is already sorted).
        for &n in &self.stepped {
            let n = n as usize;
            if !self.event_bufs[n].is_empty() {
                events.extend(self.event_bufs[n].drain(..).map(|e| (NodeId(n as u32), e)));
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;
    use crate::generators;

    /// Test automaton: forwards any received u32+1 on all out-ports after a
    /// fixed dwell; the root injects value 1 at tick 0. Exercises wake-up,
    /// dwell timers, and the deadline contract (the dwell is expressed as
    /// an absolute wake deadline, not a per-step countdown).
    #[derive(Clone)]
    struct Hopper {
        meta_is_root: bool,
        out_ports: Vec<usize>,
        pending: Option<(u64, u32)>, // (emit_at_tick, value)
        dwell: u64,
        seen: Vec<u32>,
        started: bool,
    }

    #[derive(Clone, Copy, PartialEq, Debug, Default)]
    struct U32Sig(u32);

    impl Automaton for Hopper {
        type Sig = U32Sig;
        type Event = u32;

        fn step(&mut self, ctx: &mut StepCtx<'_, U32Sig, u32>) {
            if self.meta_is_root && !self.started {
                self.started = true;
                self.pending = Some((ctx.tick, 1));
            }
            for s in ctx.inputs {
                if s.0 != 0 {
                    self.seen.push(s.0);
                    ctx.events.push(s.0);
                    if self.pending.is_none() && s.0 < 5 {
                        self.pending = Some((ctx.tick + self.dwell, s.0 + 1));
                    }
                }
            }
            if let Some((at, v)) = self.pending {
                if at <= ctx.tick {
                    for &o in &self.out_ports {
                        ctx.outputs[o] = U32Sig(v);
                    }
                    self.pending = None;
                } else {
                    ctx.request_restep_at(at);
                }
            }
        }
    }

    fn hopper_engine(mode: EngineMode, dwell: u64) -> Engine<Hopper> {
        let topo = generators::ring(4);
        Engine::new(&topo, mode, |meta| Hopper {
            meta_is_root: meta.is_root,
            out_ports: meta
                .out_connected
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(i, _)| i)
                .collect(),
            pending: None,
            dwell,
            seen: Vec::new(),
            started: false,
        })
    }

    fn run_to_quiet(eng: &mut Engine<Hopper>) -> Vec<(NodeId, u32)> {
        let mut events = Vec::new();
        for _ in 0..200 {
            eng.tick(&mut events);
            if eng.is_quiet() {
                break;
            }
        }
        assert!(eng.is_quiet(), "hopper network should quiesce");
        events
    }

    #[test]
    fn message_hops_around_ring() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let events = run_to_quiet(&mut eng);
        // Value k arrives at node k (mod 4): 1@n1, 2@n2, 3@n3, 4@n0, 5@n1 stops.
        let vals: Vec<(u32, u32)> = events.iter().map(|&(n, v)| (n.0, v)).collect();
        assert_eq!(vals, vec![(1, 1), (2, 2), (3, 3), (0, 4), (1, 5)]);
    }

    #[test]
    fn all_modes_agree() {
        for dwell in [0u64, 2, 3] {
            let base = run_to_quiet(&mut hopper_engine(EngineMode::Dense, dwell));
            let sparse = run_to_quiet(&mut hopper_engine(EngineMode::Sparse, dwell));
            let par = run_to_quiet(&mut hopper_engine(EngineMode::Parallel, dwell));
            assert_eq!(base, sparse, "dense vs sparse, dwell {dwell}");
            assert_eq!(base, par, "dense vs parallel, dwell {dwell}");
        }
    }

    #[test]
    fn dwell_delays_hops() {
        let mut fast = hopper_engine(EngineMode::Sparse, 0);
        let mut slow = hopper_engine(EngineMode::Sparse, 2);
        run_to_quiet(&mut fast);
        run_to_quiet(&mut slow);
        // 5 hops, each slowed by 2 extra ticks.
        assert!(slow.tick_count() >= fast.tick_count() + 8);
    }

    #[test]
    fn quiet_network_stays_quiet() {
        let mut eng = hopper_engine(EngineMode::Sparse, 1);
        run_to_quiet(&mut eng);
        let t = eng.tick_count();
        let mut events = Vec::new();
        for _ in 0..10 {
            eng.tick(&mut events);
        }
        assert!(events.is_empty());
        assert!(eng.is_quiet());
        assert_eq!(eng.tick_count(), t + 10);
        assert_eq!(eng.signals_in_flight(), 0);
    }

    #[test]
    fn run_until_stops_on_event() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let (events, fired) = eng.run_until(100, |&(_, v)| v == 3);
        assert!(fired);
        assert_eq!(events.last().map(|&(_, v)| v), Some(3));
    }

    #[test]
    fn run_until_times_out() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let (_, fired) = eng.run_until(2, |&(_, v)| v == 99);
        assert!(!fired);
    }

    #[test]
    fn signals_in_flight_counts_nonblank() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // root emitted 1 onto the wire
        assert_eq!(eng.signals_in_flight(), 1);
    }

    #[test]
    fn skip_lull_jumps_to_the_next_deadline_in_every_mode() {
        // dwell 5: after each hop the holder sleeps 5 ticks — a pure lull.
        for mode in EngineMode::ALL {
            let mut eng = hopper_engine(mode, 5);
            let mut events = Vec::new();
            eng.tick(&mut events); // tick 0: root emits 1
            eng.tick(&mut events); // tick 1: n1 receives, arms wake at 6
            assert!(!eng.is_quiet());
            // the coming ticks 2..=5 step nothing: one O(1) jump covers them
            let skipped = eng.skip_lull(u64::MAX);
            assert_eq!(skipped, 4, "{mode:?}");
            assert_eq!(eng.tick_count(), 6);
            // a cap inside the lull is honored exactly
            let mut capped = hopper_engine(mode, 5);
            let mut capped_events = Vec::new();
            capped.tick(&mut capped_events);
            capped.tick(&mut capped_events);
            assert_eq!(capped.skip_lull(4), 2, "{mode:?}");
            assert_eq!(capped.tick_count(), 4);
            // skipping never changes what happens, only how fast we get
            // there: the full hop chain still completes identically
            let mut tail = run_to_quiet(&mut eng);
            events.append(&mut tail);
            let vals: Vec<(u32, u32)> = events.iter().map(|&(n, v)| (n.0, v)).collect();
            assert_eq!(
                vals,
                vec![(1, 1), (2, 2), (3, 3), (0, 4), (1, 5)],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn skip_lull_on_a_quiet_network_skips_to_the_limit() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        run_to_quiet(&mut eng);
        let t = eng.tick_count();
        assert_eq!(eng.skip_lull(t + 1_000_000), 1_000_000);
        assert_eq!(eng.tick_count(), t + 1_000_000);
        assert!(eng.is_quiet());
        // a limit at or behind the clock is a no-op
        assert_eq!(eng.skip_lull(t), 0);
    }

    #[test]
    fn skip_lull_does_nothing_while_signals_are_in_flight() {
        let mut eng = hopper_engine(EngineMode::Sparse, 3);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 is in flight: the coming tick has work
        assert_eq!(eng.skip_lull(u64::MAX), 0);
    }

    /// ring(4) with the wire 0→1 moved from in-port 0 to in-port 1 of n1:
    /// same nodes and δ, one wire re-routed.
    fn ring4_rerouted() -> crate::Topology {
        use crate::ids::Port;
        let mut b = crate::TopologyBuilder::new(4, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(1)).unwrap();
        b.connect(NodeId(1), Port(0), NodeId(2), Port(0)).unwrap();
        b.connect(NodeId(2), Port(0), NodeId(3), Port(0)).unwrap();
        b.connect(NodeId(3), Port(0), NodeId(0), Port(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn apply_topology_invalidates_in_flight_signals_on_removed_wires() {
        let mut eng = hopper_engine(EngineMode::Dense, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 is in flight on wire 0→1 (in-port 0)
        assert_eq!(eng.signals_in_flight(), 1);
        eng.apply_topology(&ring4_rerouted());
        // the old wire is gone; its in-flight character with it
        assert_eq!(eng.signals_in_flight(), 0);
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "the lost character never arrives");
    }

    #[test]
    fn apply_topology_keeps_signals_on_surviving_wires() {
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let mut events = Vec::new();
        eng.tick(&mut events);
        assert_eq!(eng.signals_in_flight(), 1);
        // re-applying the identical wiring disturbs nothing
        eng.apply_topology(&generators::ring(4));
        assert_eq!(eng.signals_in_flight(), 1);
        let events = run_to_quiet(&mut eng);
        assert_eq!(events.len(), 5, "the full hop chain still completes");
    }

    #[test]
    fn repeated_rewires_preserve_wake_deadlines_and_reuse_scratch() {
        // A node mid-dwell keeps its wake across a rewire that does not
        // touch its ports, in both stepping disciplines.
        for mode in [EngineMode::Dense, EngineMode::Sparse] {
            let mut eng = hopper_engine(mode, 4);
            let mut events = Vec::new();
            eng.tick(&mut events); // root emits 1
            eng.tick(&mut events); // n1 adopts it, arms wake at 1 + 4
            for _ in 0..10 {
                // rewiring back and forth exercises the reused scratch path
                eng.apply_topology(&ring4_rerouted());
                eng.apply_topology(&generators::ring(4));
            }
            let mut tail = run_to_quiet(&mut eng);
            events.append(&mut tail);
            let vals: Vec<u32> = events.iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, vec![1, 2, 3, 4, 5], "{mode:?}");
        }
    }

    fn hopper_factory(meta: NodeMeta) -> Hopper {
        Hopper {
            meta_is_root: meta.is_root,
            out_ports: meta
                .out_connected
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(i, _)| i)
                .collect(),
            pending: None,
            dwell: 0,
            seen: Vec::new(),
            started: false,
        }
    }

    #[test]
    fn apply_topology_with_splices_a_joining_automaton_in() {
        use crate::mutation::{MutationKind, TopologyMutation};
        let base = generators::ring(4);
        let (joined, change) = base
            .apply_rooted(
                &TopologyMutation {
                    kind: MutationKind::NodeJoin,
                    // splice the quiet wire 1→2 (the wire 0→1 carries the
                    // in-flight value and re-splicing it would drop it)
                    selector: 1,
                },
                NodeId(0),
            )
            .unwrap();
        let runs: Vec<Vec<(NodeId, u32)>> = [EngineMode::Dense, EngineMode::Sparse]
            .into_iter()
            .map(|mode| {
                let mut eng = hopper_engine(mode, 0);
                let mut events = Vec::new();
                eng.tick(&mut events);
                eng.apply_topology_with(&joined, change, &mut hopper_factory);
                assert_eq!(eng.num_nodes(), 5);
                let mut tail = run_to_quiet(&mut eng);
                events.append(&mut tail);
                events
            })
            .collect();
        assert_eq!(runs[0], runs[1], "dense vs sparse across a join");
        // the newcomer (n4) took part in the hop chain
        assert!(
            runs[0].iter().any(|&(n, _)| n == NodeId(4)),
            "{:?}",
            runs[0]
        );
    }

    #[test]
    fn apply_topology_with_removes_a_leaving_automaton_and_its_signals() {
        use crate::mutation::{MembershipChange, MutationKind, TopologyMutation};
        let base = generators::ring(4);
        let applied = base.apply_or_fallback_rooted(
            &TopologyMutation {
                kind: MutationKind::NodeLeave,
                selector: 1,
            },
            NodeId(0),
        );
        assert_eq!(
            applied.membership,
            MembershipChange::Left { node: NodeId(1) }
        );
        let mut eng = hopper_engine(EngineMode::Sparse, 0);
        let mut events = Vec::new();
        eng.tick(&mut events); // value 1 in flight on the wire 0→1
        assert_eq!(eng.signals_in_flight(), 1);
        eng.apply_topology_with(&applied.topology, applied.membership, &mut hopper_factory);
        assert_eq!(eng.num_nodes(), 3);
        // the in-flight character died with its wire into the departed node
        assert_eq!(eng.signals_in_flight(), 0);
        let events = run_to_quiet(&mut eng);
        assert!(events.is_empty(), "the lost character never arrives");
    }

    #[test]
    fn all_modes_agree_across_a_rewire_boundary() {
        let runs: Vec<Vec<(NodeId, u32)>> =
            [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel]
                .into_iter()
                .map(|mode| {
                    let mut eng = hopper_engine(mode, 2);
                    let mut events = Vec::new();
                    for _ in 0..3 {
                        eng.tick(&mut events);
                    }
                    eng.apply_topology(&ring4_rerouted());
                    let mut tail = run_to_quiet(&mut eng);
                    events.append(&mut tail);
                    events
                })
                .collect();
        assert_eq!(runs[0], runs[1], "dense vs sparse across rewire");
        assert_eq!(runs[0], runs[2], "dense vs parallel across rewire");
    }
}
