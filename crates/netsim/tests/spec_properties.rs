//! Property tests for the declarative spec layer: every spec the
//! registry can describe round-trips through `Display`/`FromStr`, and
//! spec-built topologies are port-for-port identical to the
//! corresponding `generators::*` call.

use gtd_netsim::{
    generators, spec, DynamicSpec, FaultPlane, MembershipChange, MutationKind, MutationSchedule,
    NodeId, ScheduledMutation, TopologyMutation, TopologySpec,
};
use proptest::prelude::*;

/// A random valid spec drawn from every registry family, with parameters
/// kept small enough that `build()` stays cheap.
fn arb_spec() -> impl Strategy<Value = TopologySpec> {
    (
        0usize..10,  // family selector
        2usize..24,  // n-ish parameter
        1usize..4,   // small structural parameter
        0u64..1_000, // seed
        0u64..900,   // p numerator (p = x / 1000 stays in [0, 0.9))
    )
        .prop_map(|(family, n, small, seed, pmil)| match family {
            0 => TopologySpec::Ring { n },
            1 => TopologySpec::LineBidi { n },
            2 => TopologySpec::Torus { w: n, h: small },
            3 => TopologySpec::Debruijn { k: 2, m: small + 1 },
            4 => TopologySpec::Kautz { k: 2, m: small },
            5 => TopologySpec::Hypercube {
                dims: small as u32 + 1,
            },
            6 => TopologySpec::Complete { n: small + 2 },
            7 => TopologySpec::RandomSc {
                n,
                delta: small as u8 + 2,
                seed,
            },
            8 => TopologySpec::BidiGridFaulty {
                w: small + 1,
                h: small + 1,
                p: pmil as f64 / 1000.0,
                seed,
            },
            _ => TopologySpec::TreeLoop {
                h: small as u32,
                seed,
            },
        })
}

/// A random mutation schedule of 0..=3 tick-stamped mutations drawn from
/// all seven kinds (membership changes included).
fn arb_schedule() -> impl Strategy<Value = MutationSchedule> {
    proptest::collection::vec(
        (0u64..10_000, 0usize..MutationKind::ALL.len(), 0u64..1_000),
        0..4,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(tick, kind, selector)| ScheduledMutation {
                tick,
                mutation: TopologyMutation {
                    kind: MutationKind::ALL[kind],
                    selector,
                },
            })
            .collect()
    })
}

/// A random fault plane in canonical form: inactive combinations
/// collapse to `FaultPlane::NONE`, exactly as the parser normalizes
/// them, so struct-level round-trips stay exact.
fn arb_fault() -> impl Strategy<Value = FaultPlane> {
    (0u64..=1_000, 0u64..4, 0u64..4, 0u64..1_000).prop_map(|(loss_mil, dmin, span, seed)| {
        let plane = FaultPlane {
            loss: loss_mil as f64 / 1000.0,
            delay_min: dmin,
            delay_max: dmin + span,
            seed,
        };
        if plane.is_active() {
            plane
        } else {
            FaultPlane::NONE
        }
    })
}

fn arb_dynamic_spec() -> impl Strategy<Value = DynamicSpec> {
    (arb_spec(), arb_fault(), arb_schedule()).prop_map(|(base, fault, schedule)| DynamicSpec {
        base,
        fault,
        schedule,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn every_spec_round_trips_through_display_and_fromstr(s in arb_spec()) {
        prop_assert_eq!(s.validate(), Ok(()));
        let rendered = s.to_string();
        let back: TopologySpec = rendered.parse()
            .unwrap_or_else(|e| panic!("{rendered:?} must re-parse: {e}"));
        prop_assert_eq!(back, s.clone());
        // the family prefix is a registry name
        prop_assert!(spec::family(s.family_name()).is_some());
        prop_assert!(rendered.starts_with(s.family_name()));
    }

    #[test]
    fn spec_build_is_identical_to_the_generator_call(s in arb_spec()) {
        let expected = match s {
            TopologySpec::Ring { n } => generators::ring(n),
            TopologySpec::LineBidi { n } => generators::line_bidi(n),
            TopologySpec::Torus { w, h } => generators::torus(w, h),
            TopologySpec::Debruijn { k, m } => generators::debruijn(k, m),
            TopologySpec::Kautz { k, m } => generators::kautz(k, m),
            TopologySpec::Hypercube { dims } => generators::hypercube_bidi(dims),
            TopologySpec::Complete { n } => generators::complete_bidi(n),
            TopologySpec::RandomSc { n, delta, seed } => generators::random_sc(n, delta, seed),
            TopologySpec::BidiGridFaulty { w, h, p, seed } => {
                generators::bidi_grid_faulty(w, h, p, seed)
            }
            TopologySpec::TreeLoop { h, seed } => generators::tree_loop_random(h, seed),
        };
        prop_assert_eq!(s.build(), expected);
    }

    #[test]
    fn parse_is_case_and_shape_strict(s in arb_spec()) {
        // a parsed-then-rendered-then-parsed spec is a fixed point
        let once: TopologySpec = s.to_string().parse().unwrap();
        let twice: TopologySpec = once.to_string().parse().unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn every_mutated_spec_round_trips_through_display_and_fromstr(s in arb_dynamic_spec()) {
        prop_assert_eq!(s.validate(), Ok(()));
        let rendered = s.to_string();
        let back: DynamicSpec = rendered.parse()
            .unwrap_or_else(|e| panic!("{rendered:?} must re-parse: {e}"));
        prop_assert_eq!(&back, &s);
        // the rendering is canonical: suffixes sorted by tick, one '+' each
        prop_assert_eq!(rendered.matches('+').count(), s.schedule.len());
        let ticks: Vec<u64> = back.schedule.iter().map(|m| m.tick).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ticks, sorted);
        // static specs stay static; mutated specs know they are dynamic
        prop_assert_eq!(back.is_static(), s.schedule.is_empty());
    }

    #[test]
    fn mutated_spec_base_parses_as_the_plain_spec(s in arb_dynamic_spec()) {
        // stripping the suffixes recovers exactly the base spec
        let base_text = s.base.to_string();
        let rendered = s.to_string();
        prop_assert!(rendered.starts_with(&base_text));
        let plain: TopologySpec = base_text.parse().unwrap();
        prop_assert_eq!(plain, s.base);
    }

    #[test]
    fn applying_a_schedule_preserves_validity_after_every_step(
        pair in (arb_spec(), arb_schedule())
    ) {
        // Arbitrary mixes of all seven kinds (membership changes
        // included) must keep the network valid, strongly connected and
        // degree-bounded after *every* applied step — not just at the
        // end — and the per-step fold must agree with the one-shot
        // `final_topology`. Capped at two mutations to keep builds cheap.
        let (base_spec, schedule) = pair;
        let s = DynamicSpec {
            base: base_spec,
            fault: FaultPlane::NONE,
            schedule: schedule.iter().take(2).copied().collect(),
        };
        let base = s.build();
        let delta = base.delta() as usize;
        let mut topo = base.clone();
        let mut root = NodeId(0);
        for sm in s.schedule.iter() {
            let before_n = topo.num_nodes();
            let applied = topo.apply_or_fallback_rooted(&sm.mutation, root);
            let expected_n = match applied.membership {
                MembershipChange::None => before_n,
                MembershipChange::Joined { .. } => before_n + 1,
                MembershipChange::Left { .. } => before_n - 1,
            };
            root = applied.membership.relabel(root);
            topo = applied.topology;
            prop_assert_eq!(topo.num_nodes(), expected_n);
            prop_assert!(topo.validate().is_ok());
            prop_assert!(gtd_netsim::algo::is_strongly_connected(&topo));
            prop_assert_eq!(topo.delta(), base.delta());
            prop_assert!(root.idx() < topo.num_nodes(), "root survives every step");
            for id in topo.node_ids() {
                let (outd, ind) = (topo.out_degree(id), topo.in_degree(id));
                prop_assert!((1..=delta).contains(&outd), "{id}: out-degree {outd}");
                prop_assert!((1..=delta).contains(&ind), "{id}: in-degree {ind}");
            }
        }
        prop_assert_eq!(s.final_topology(), topo);
    }

    #[test]
    fn membership_suffixes_survive_parse_render_parse(
        triple in (0usize..3, 0u64..50, 0u64..5_000)
    ) {
        // the new suffixes in particular: parse → render → parse is a
        // fixed point for every membership kind on several bases
        let (fam_idx, sel, tick) = triple;
        let base = ["ring:9", "random-sc:n=12,delta=3,seed=2", "torus:3,3"][fam_idx];
        for kind in ["node-join", "node-leave", "burst"] {
            let text = format!("{base}+{kind}={sel}@t{tick}");
            let spec: DynamicSpec = text.parse()
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            prop_assert_eq!(&spec.to_string(), &text);
            let again: DynamicSpec = spec.to_string().parse().unwrap();
            prop_assert_eq!(again, spec);
        }
    }
}

#[test]
fn registry_examples_cover_every_family_exactly_once() {
    let examples = spec::registry_examples();
    assert_eq!(examples.len(), spec::REGISTRY.len());
    for (example, fam) in examples.iter().zip(spec::REGISTRY) {
        assert_eq!(example.family_name(), fam.name);
        // examples build real networks
        let topo = example.build();
        assert!(topo.num_nodes() >= 2);
        assert!(
            gtd_netsim::algo::is_strongly_connected(&topo),
            "{}",
            fam.name
        );
    }
}
