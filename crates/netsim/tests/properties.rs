//! Property tests for the substrate: topology invariants, graph-algorithm
//! cross-checks, and engine-mode equivalence under arbitrary automata.

use gtd_netsim::{
    algo, generators, Automaton, Engine, EngineMode, NodeId, Port, StepCtx, Topology,
    TopologyBuilder,
};
use proptest::prelude::*;

fn arb_sc_topology() -> impl Strategy<Value = Topology> {
    (3usize..40, 2u8..6, 0u64..1_000_000).prop_map(|(n, d, seed)| generators::random_sc(n, d, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_topologies_validate(topo in arb_sc_topology()) {
        topo.validate().expect("generator output validates");
        prop_assert!(algo::is_strongly_connected(&topo));
    }

    #[test]
    fn degree_bounds_respected(topo in arb_sc_topology()) {
        let delta = topo.delta() as usize;
        for v in topo.node_ids() {
            prop_assert!(topo.out_degree(v) >= 1 && topo.out_degree(v) <= delta);
            prop_assert!(topo.in_degree(v) >= 1 && topo.in_degree(v) <= delta);
        }
    }

    #[test]
    fn edge_listing_is_involutive(topo in arb_sc_topology()) {
        // rebuilding from the edge list reproduces the identical topology
        let mut b = TopologyBuilder::new(topo.num_nodes(), topo.delta());
        for e in topo.edges() {
            b.connect(e.src, e.src_port, e.dst, e.dst_port).unwrap();
        }
        prop_assert_eq!(b.build().unwrap(), topo);
    }

    #[test]
    fn bfs_satisfies_triangle_inequality_on_edges(topo in arb_sc_topology()) {
        let d0 = algo::bfs_dist(&topo, NodeId(0));
        for e in topo.edges() {
            // dist(0, dst) <= dist(0, src) + 1
            prop_assert!(d0[e.dst.idx()] <= d0[e.src.idx()] + 1);
        }
    }

    #[test]
    fn forward_and_reverse_bfs_agree_on_reachability(topo in arb_sc_topology()) {
        // strongly connected: both directions fully reachable
        let fwd = algo::bfs_dist(&topo, NodeId(1 % topo.num_nodes() as u32));
        let rev = algo::bfs_dist_rev(&topo, NodeId(1 % topo.num_nodes() as u32));
        prop_assert!(fwd.iter().all(|&d| d != algo::UNREACHABLE));
        prop_assert!(rev.iter().all(|&d| d != algo::UNREACHABLE));
    }

    #[test]
    fn tarjan_single_component_iff_strongly_connected(topo in arb_sc_topology()) {
        let comp = algo::tarjan_scc(&topo);
        prop_assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn diameter_is_max_eccentricity(topo in arb_sc_topology()) {
        let d = algo::diameter(&topo);
        let mut max_ecc = 0;
        for v in topo.node_ids() {
            let dist = algo::bfs_dist(&topo, v);
            max_ecc = max_ecc.max(*dist.iter().max().unwrap());
        }
        prop_assert_eq!(d, max_ecc);
    }

    #[test]
    fn canonical_paths_are_shortest_and_deterministic(topo in arb_sc_topology()) {
        let src = NodeId(0);
        let dist = algo::bfs_dist(&topo, src);
        let tree1 = algo::canonical_bfs(&topo, src);
        let tree2 = algo::canonical_bfs(&topo, src);
        prop_assert_eq!(&tree1, &tree2, "canonical BFS must be deterministic");
        for v in topo.node_ids() {
            let p = algo::canonical_path(&topo, src, v).unwrap();
            prop_assert_eq!(p.len() as u32, dist[v.idx()], "canonical path not shortest");
            // and it walks to v
            let outs: Vec<Port> = p.iter().map(|&(o, _)| o).collect();
            prop_assert_eq!(topo.walk_out_ports(src, &outs), Some(v));
        }
    }

    #[test]
    fn canonical_parent_is_lowest_inport_among_frontier(topo in arb_sc_topology()) {
        let src = NodeId(0);
        let dist = algo::bfs_dist(&topo, src);
        let tree = algo::canonical_bfs(&topo, src);
        for v in topo.node_ids() {
            let Some(e) = tree[v.idx()] else { continue };
            // no lower-numbered in-port of v is fed by a frontier node
            for (i, ep) in topo.in_edges(v) {
                if i < e.parent_in_port {
                    prop_assert!(
                        dist[ep.node.idx()] + 1 > dist[v.idx()],
                        "in-port {i} of {v} would have won the tie-break"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine equivalence under an arbitrary little automaton
// ---------------------------------------------------------------------

/// A pseudo-random but fully deterministic automaton: xor-accumulates
/// inputs, emits on a schedule derived from its accumulated state, and
/// emits events so transcript equality is a strong check.
#[derive(Clone)]
struct Scrambler {
    acc: u64,
    fires_left: u32,
    out_ports: Vec<usize>,
    is_root: bool,
    started: bool,
}

#[derive(Clone, Copy, PartialEq, Debug, Default)]
struct Word(u64);

impl Automaton for Scrambler {
    type Sig = Word;
    type Event = u64;

    fn step(&mut self, ctx: &mut StepCtx<'_, Word, u64>) {
        if self.is_root && !self.started {
            self.started = true;
            self.acc = 0x9e3779b97f4a7c15;
            self.fires_left = 6;
        }
        for (i, s) in ctx.inputs.iter().enumerate() {
            if s.0 != 0 {
                self.acc = self
                    .acc
                    .rotate_left(7)
                    .wrapping_mul(0x2545f4914f6cdd1d)
                    .wrapping_add(s.0 ^ i as u64);
                if self.fires_left == 0 {
                    self.fires_left = (s.0 % 3) as u32;
                }
                ctx.events.push(self.acc);
            }
        }
        if self.fires_left > 0 {
            self.fires_left -= 1;
            let v = self.acc | 1;
            let o = self.out_ports[(self.acc % self.out_ports.len() as u64) as usize];
            ctx.outputs[o] = Word(v);
            if self.fires_left > 0 {
                ctx.request_restep();
            }
        }
    }
}

fn run_scrambler(topo: &Topology, mode: EngineMode, ticks: u64) -> Vec<(NodeId, u64)> {
    run_scrambler_sharded(topo, mode, ticks, None)
}

fn run_scrambler_sharded(
    topo: &Topology,
    mode: EngineMode,
    ticks: u64,
    shards: Option<usize>,
) -> Vec<(NodeId, u64)> {
    let mut engine =
        Engine::with_root_sharded(topo, mode, NodeId(0), shards, &mut |meta| Scrambler {
            acc: 0,
            fires_left: 0,
            out_ports: meta.out_connected.iter().map(|p| p.idx()).collect(),
            is_root: meta.is_root,
            started: false,
        });
    let mut all = Vec::new();
    let mut events = Vec::new();
    for _ in 0..ticks {
        events.clear();
        engine.tick(&mut events);
        all.append(&mut events);
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn engine_modes_equivalent_for_arbitrary_automata(
        topo in arb_sc_topology(),
        ticks in 10u64..120,
    ) {
        let dense = run_scrambler(&topo, EngineMode::Dense, ticks);
        let sparse = run_scrambler(&topo, EngineMode::Sparse, ticks);
        let parallel = run_scrambler(&topo, EngineMode::Parallel, ticks);
        prop_assert_eq!(&dense, &sparse, "dense vs sparse");
        prop_assert_eq!(&dense, &parallel, "dense vs parallel");
    }
}

#[test]
fn pooled_sharded_parallel_matches_dense_at_scale() {
    // Every generated proptest topology is tiny, where auto-sharding
    // keeps Parallel sequential. This instance forces multi-shard worker
    // pools so the pooled step/scatter/merge phases, cross-shard lanes,
    // saturated ticks, and the frontier rebuild all actually run — and
    // must stay bit-identical to dense at every shard count.
    let topo = generators::random_sc(1024, 3, 42);
    let dense = run_scrambler(&topo, EngineMode::Dense, 150);
    assert!(!dense.is_empty(), "scrambler must emit events");
    for shards in [2usize, 7, 16] {
        let parallel = run_scrambler_sharded(&topo, EngineMode::Parallel, 150, Some(shards));
        assert_eq!(
            dense, parallel,
            "parallel/{shards} shards diverged from dense"
        );
    }
}
