//! Vendored, API-compatible subset of [criterion](https://crates.io/crates/criterion).
//!
//! This workspace builds offline; the real crate is not fetchable. The
//! subset covers what the `gtd-bench` benches use: [`Criterion`],
//! benchmark groups with [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::throughput`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock timer: a short warm-up, then
//! `sample_size` timed samples of a batch sized to last ≥ 1 ms each;
//! the best (minimum) per-iteration time is reported, one line per
//! benchmark, with element throughput when configured.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b, 20, None);
        self
    }
}

/// Per-iteration work-unit count used for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name inside a group.
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by its parameter only (`group/parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            parameter: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (the real crate enforces
    /// ≥ 10; this subset just stores it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configure throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id.parameter);
        report(&label, &b, self.sample_size, self.throughput);
        self
    }

    /// Close the group (printing is incremental; nothing is pending).
    pub fn finish(self) {}
}

/// Collects one benchmark's timing; populated by [`Bencher::iter`].
#[derive(Default)]
pub struct Bencher {
    /// Best observed per-iteration time.
    best: Option<Duration>,
    /// Samples requested at measurement time (set lazily by `report`).
    planned_samples: usize,
}

impl Bencher {
    /// Time the closure. Runs a warm-up, sizes a batch to last ≥ 1 ms,
    /// then records the minimum per-iteration time over the samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let samples = if self.planned_samples == 0 {
            10
        } else {
            self.planned_samples
        };
        // Warm-up + batch sizing: grow the batch until it lasts >= 1 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut best = Duration::MAX;
        let deadline = Instant::now() + Duration::from_millis(300);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let per_iter = t0.elapsed() / batch as u32;
            best = best.min(per_iter);
            if Instant::now() > deadline {
                break;
            }
        }
        self.best = Some(best);
    }
}

fn report(label: &str, b: &Bencher, _samples: usize, throughput: Option<Throughput>) {
    match b.best {
        Some(best) => {
            let per_iter = best.as_secs_f64();
            let tp = match throughput {
                Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                    format!("  {:>12.2} Kelem/s", n as f64 / per_iter / 1e3)
                }
                Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                    format!("  {:>12.2} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                _ => String::new(),
            };
            println!("bench {label:<48} {:>12.3} µs/iter{tp}", per_iter * 1e6);
        }
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }
}
