//! Lemma 4.2 at integration scope: "the network is left completely
//! undisturbed by any data construct created by the algorithm".
//!
//! These tests drive the engine tick by tick and check the invariant at
//! every opportunity, not just at termination: whenever *no* processor has
//! protocol machinery running, *every* processor must be indistinguishable
//! from factory state (DFS bookkeeping aside — the paper never erases it).

use gtd_core::runner::{build_gtd_engine, run_single_bca, run_single_rca};
use gtd_core::{GtdSession, ProtocolNode, StartBehavior, TranscriptEvent};
use gtd_netsim::{generators, Engine, EngineMode, NodeId, Port};

/// Tick the engine to termination, checking the quiet⇒pristine invariant
/// on every tick. Returns total ticks.
fn run_checked(topo: &gtd_netsim::Topology) -> u64 {
    let mut engine = build_gtd_engine(topo, EngineMode::Dense);
    let mut events = Vec::new();
    let guard = 2_000_000u64;
    loop {
        assert!(engine.tick_count() < guard, "wedged");
        events.clear();
        engine.tick(&mut events);
        let anyone_busy = engine.nodes().iter().any(|n| n.protocol_busy());
        if !anyone_busy && engine.signals_in_flight() == 0 {
            for (i, n) in engine.nodes().iter().enumerate() {
                assert!(
                    n.snake_state_pristine(),
                    "tick {}: idle network, node {i} residue: {}",
                    engine.tick_count(),
                    n.residue_description()
                );
            }
        }
        if events
            .iter()
            .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
        {
            break;
        }
    }
    let t = engine.tick_count();
    // after termination: one grace tick, then everything is pristine forever
    engine.tick(&mut events);
    assert!(engine.is_quiet());
    assert_eq!(engine.signals_in_flight(), 0);
    for n in engine.nodes() {
        assert!(
            n.snake_state_pristine(),
            "post-termination residue: {}",
            n.residue_description()
        );
    }
    t
}

#[test]
fn quiet_network_is_always_pristine_ring() {
    run_checked(&generators::ring(7));
}

#[test]
fn quiet_network_is_always_pristine_random() {
    for seed in 0..8 {
        run_checked(&generators::random_sc(20, 3, seed));
    }
}

#[test]
fn quiet_network_is_always_pristine_tree_loop() {
    run_checked(&generators::tree_loop_random(3, 2));
}

#[test]
fn single_rca_leaves_no_trace_anywhere() {
    for seed in 0..5 {
        let topo = generators::random_sc(25, 3, seed);
        for a in [1u32, 7, 13] {
            let probe = run_single_rca(&topo, NodeId(a), EngineMode::Dense).unwrap();
            assert!(probe.clean_at_end, "seed {seed} A={a}");
        }
    }
}

#[test]
fn single_bca_leaves_no_trace_anywhere() {
    for seed in 0..5 {
        let topo = generators::random_sc(25, 3, seed);
        // every node's in-port 0 is wired in random_sc (hamiltonian base)
        for b in [0u32, 5, 11] {
            let probe = run_single_bca(&topo, NodeId(b), Port(0), EngineMode::Dense).unwrap();
            assert!(probe.clean_at_end, "seed {seed} B={b}");
        }
    }
}

#[test]
fn finite_state_bound_holds() {
    // The per-processor character high-water mark must stay a small
    // constant — independent of N — or the automaton is not finite-state.
    let mut max_small = 0usize;
    let mut max_large = 0usize;
    for (n, slot) in [(16usize, 0usize), (64, 1)] {
        let topo = generators::random_sc(n, 3, 3);
        let mut engine = build_gtd_engine(&topo, EngineMode::Sparse);
        let mut events = Vec::new();
        for _ in 0..5_000_000u64 {
            events.clear();
            engine.tick(&mut events);
            if events
                .iter()
                .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
            {
                break;
            }
        }
        let m = engine
            .nodes()
            .iter()
            .map(|x| x.stat_max_chars)
            .max()
            .unwrap();
        if slot == 0 {
            max_small = m;
        } else {
            max_large = m;
        }
    }
    assert!(
        max_small <= 8,
        "character high-water {max_small} > constant bound"
    );
    assert!(
        max_large <= 8,
        "character high-water {max_large} > constant bound"
    );
    // and crucially: not growing with N
    assert!(
        max_large <= max_small + 2,
        "char bound grows with N: {max_small} -> {max_large}"
    );
}

#[test]
fn kill_floods_are_bounded_per_protocol() {
    // Each RCA/BCA floods at most one KILL acceptance per processor per
    // erasure wave; total accepted kills must be O((RCAs + BCAs) * N).
    let topo = generators::random_sc(24, 3, 6);
    let mut engine = build_gtd_engine(&topo, EngineMode::Sparse);
    let mut events = Vec::new();
    for _ in 0..5_000_000u64 {
        events.clear();
        engine.tick(&mut events);
        if events
            .iter()
            .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
        {
            break;
        }
    }
    let kills: u64 = engine.nodes().iter().map(|n| n.stat_kills_accepted).sum();
    let protocols: u64 = engine
        .nodes()
        .iter()
        .map(|n| n.stat_rcas_started + n.stat_bcas_started)
        .sum();
    let n = topo.num_nodes() as u64;
    assert!(
        kills <= protocols * n * 2,
        "kills {kills} exceed 2*N per protocol ({protocols} protocols)"
    );
}

#[test]
fn passive_network_stays_silent_forever() {
    // No root, no probes: nothing may ever happen (quiescence, §1.1).
    let topo = generators::random_sc(15, 3, 0);
    let mut engine = Engine::new(&topo, EngineMode::Sparse, |meta| {
        ProtocolNode::new(&meta, StartBehavior::Passive)
    });
    let mut events = Vec::new();
    for _ in 0..50 {
        engine.tick(&mut events);
    }
    assert!(events.is_empty());
    assert!(engine.is_quiet());
    assert_eq!(engine.signals_in_flight(), 0);
}

#[test]
fn remap_rounds_are_also_pristine_throughout() {
    // The re-mapping extension must preserve the quiet ⇒ pristine invariant
    // across round boundaries (the RESET flood runs concurrently with the
    // new round's first RCA and must not confuse the census: RESET touches
    // only DFS bookkeeping, never snake state).
    let topo = generators::random_sc(16, 3, 21);
    let runs = GtdSession::on(&topo)
        .mode(EngineMode::Dense)
        .run_repeated(2)
        .unwrap();
    for r in &runs {
        assert!(r.clean_at_end);
        r.map.verify_against(&topo, NodeId(0)).unwrap();
    }
}
