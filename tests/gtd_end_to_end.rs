//! End-to-end Global Topology Determination runs across graph families,
//! seeds, roots and engine modes — Theorem 4.1 at integration scope.

use gtd_core::{run_gtd, TranscriptEvent};
use gtd_netsim::{algo, generators, EngineMode, NodeId, Topology, TopologyBuilder};

fn assert_exact(topo: &Topology, mode: EngineMode) -> gtd_core::GtdRun {
    let run = run_gtd(topo, mode).expect("protocol terminates");
    run.map.verify_against(topo, NodeId(0)).expect("map is exact");
    assert!(run.clean_at_end, "Lemma 4.2 violated");
    assert!(run.all_visited, "DFS must visit every processor");
    run
}

#[test]
fn structured_families_map_exactly() {
    for topo in [
        generators::ring(2),
        generators::ring(9),
        generators::line_bidi(7),
        generators::torus(3, 3),
        generators::torus(5, 1),
        generators::debruijn(2, 3),
        generators::debruijn(3, 2),
        generators::tree_loop(2, &[0, 1, 2, 3]),
        generators::tree_loop(2, &[3, 1, 0, 2]),
        generators::complete_bidi(4),
        generators::bidi_grid_faulty(4, 3, 0.25, 7),
    ] {
        assert_exact(&topo, EngineMode::Sparse);
    }
}

#[test]
fn random_networks_many_seeds() {
    for seed in 0..25 {
        let topo = generators::random_sc(24, 3, seed);
        assert_exact(&topo, EngineMode::Sparse);
    }
}

#[test]
fn random_networks_higher_degree() {
    for seed in 0..6 {
        let topo = generators::random_sc(40, 6, seed);
        assert_exact(&topo, EngineMode::Sparse);
    }
}

#[test]
fn transcript_counts_match_edge_counts() {
    // Theorem 4.1's core accounting: one FORWARD report per edge, one
    // backwards (BCA) return per edge.
    for seed in [3u64, 17] {
        let topo = generators::random_sc(30, 3, seed);
        let e = topo.num_edges();
        let run = assert_exact(&topo, EngineMode::Sparse);
        assert_eq!(run.stats.edges_reported(), e, "one FORWARD per edge");
        assert_eq!(run.stats.backs + run.stats.local_backs, e, "one BCA return per edge");
        assert_eq!(run.stats.bcas(), e);
    }
}

#[test]
fn all_modes_produce_identical_transcripts() {
    let topo = generators::random_sc(20, 3, 11);
    let dense = run_gtd(&topo, EngineMode::Dense).unwrap();
    let sparse = run_gtd(&topo, EngineMode::Sparse).unwrap();
    let parallel = run_gtd(&topo, EngineMode::Parallel).unwrap();
    assert_eq!(dense.events, sparse.events, "dense vs sparse transcripts differ");
    assert_eq!(dense.events, parallel.events, "dense vs parallel transcripts differ");
    assert_eq!(dense.ticks, sparse.ticks);
    assert_eq!(dense.ticks, parallel.ticks);
}

#[test]
fn repeated_runs_are_deterministic() {
    let topo = generators::random_sc(25, 3, 5);
    let a = run_gtd(&topo, EngineMode::Sparse).unwrap();
    let b = run_gtd(&topo, EngineMode::Sparse).unwrap();
    assert_eq!(a.events, b.events);
    assert_eq!(a.ticks, b.ticks);
}

/// Relabel `topo` so that `new_root` becomes node 0 (the engine's root).
fn relabel_root(topo: &Topology, new_root: NodeId) -> Topology {
    let n = topo.num_nodes();
    let map = |v: NodeId| -> NodeId {
        if v == new_root {
            NodeId(0)
        } else if v == NodeId(0) {
            new_root
        } else {
            v
        }
    };
    let mut b = TopologyBuilder::new(n, topo.delta());
    for e in topo.edges() {
        b.connect(map(e.src), e.src_port, map(e.dst), e.dst_port).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn every_root_maps_the_same_network() {
    let topo = generators::random_sc(14, 3, 9);
    for root in topo.node_ids() {
        let relabeled = relabel_root(&topo, root);
        let run = run_gtd(&relabeled, EngineMode::Sparse)
            .unwrap_or_else(|e| panic!("root {root}: {e}"));
        run.map.verify_against(&relabeled, NodeId(0)).expect("exact from every root");
    }
}

#[test]
fn parallel_edges_and_two_cycles_mapped() {
    // Adversarial small case: double edges both directions plus a 2-cycle.
    let mut b = TopologyBuilder::new(3, 4);
    for (u, v) in [(0u32, 1u32), (0, 1), (1, 0), (1, 0), (1, 2), (2, 0), (0, 2), (2, 1)] {
        b.connect_auto(NodeId(u), NodeId(v)).unwrap();
    }
    let topo = b.build().unwrap();
    let run = assert_exact(&topo, EngineMode::Dense);
    assert_eq!(run.map.num_edges(), 8);
}

#[test]
fn ticks_scale_linearly_in_e_times_d() {
    // Lemma 4.4 as a test: the normalized cost stays within a narrow band.
    let mut ratios = Vec::new();
    for n in [12usize, 24, 36] {
        let topo = generators::ring(n);
        let run = assert_exact(&topo, EngineMode::Sparse);
        let ed = (topo.num_edges() * algo::diameter(&topo) as usize) as f64;
        ratios.push(run.ticks as f64 / ed);
    }
    let (lo, hi) = (
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
    assert!(hi / lo < 1.5, "O(E*D) band too wide: {ratios:?}");
}

#[test]
fn transcript_replays_through_independent_master() {
    // The events captured in the run can be replayed into a fresh master
    // computer and produce the identical map (transcript completeness).
    let topo = generators::random_sc(18, 3, 4);
    let run = run_gtd(&topo, EngineMode::Sparse).unwrap();
    let mut master = gtd_core::MasterComputer::new();
    for &ev in &run.events {
        master.feed(ev).expect("replay decodes");
    }
    let map = master.into_map().expect("replay terminates");
    assert_eq!(map, run.map);
}

#[test]
fn terminated_event_is_last_and_unique() {
    let topo = generators::random_sc(16, 3, 8);
    let run = run_gtd(&topo, EngineMode::Sparse).unwrap();
    let terms = run
        .events
        .iter()
        .filter(|&&e| e == TranscriptEvent::Terminated)
        .count();
    assert_eq!(terms, 1);
    assert_eq!(*run.events.last().unwrap(), TranscriptEvent::Terminated);
    assert_eq!(*run.events.first().unwrap(), TranscriptEvent::Start);
}

#[test]
fn kautz_and_hypercube_families_map_exactly() {
    for topo in [generators::kautz(2, 2), generators::kautz(2, 3), generators::hypercube_bidi(3)] {
        assert_exact(&topo, EngineMode::Sparse);
    }
}
