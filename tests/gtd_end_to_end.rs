//! End-to-end Global Topology Determination runs across graph families,
//! seeds, roots and engine modes — Theorem 4.1 at integration scope,
//! driven through the unified [`GtdSession`] API.

use gtd::{generators, EngineMode, GtdSession, MasterComputer, NodeId, Topology, TopologyBuilder};
use gtd_core::{RunOutcome, TranscriptEvent};

fn assert_exact(topo: &Topology, mode: EngineMode) -> RunOutcome {
    let run = GtdSession::on(topo)
        .mode(mode)
        .run()
        .expect("protocol terminates");
    run.map
        .verify_against(topo, NodeId(0))
        .expect("map is exact");
    assert!(run.clean_at_end, "Lemma 4.2 violated");
    assert!(run.all_visited, "DFS must visit every processor");
    run
}

#[test]
fn structured_families_map_exactly() {
    for topo in [
        generators::ring(2),
        generators::ring(9),
        generators::line_bidi(7),
        generators::torus(3, 3),
        generators::torus(5, 1),
        generators::debruijn(2, 3),
        generators::debruijn(3, 2),
        generators::tree_loop(2, &[0, 1, 2, 3]),
        generators::tree_loop(2, &[3, 1, 0, 2]),
        generators::complete_bidi(4),
        generators::bidi_grid_faulty(4, 3, 0.25, 7),
    ] {
        assert_exact(&topo, EngineMode::Sparse);
    }
}

#[test]
fn random_networks_many_seeds() {
    for seed in 0..25 {
        let topo = generators::random_sc(24, 3, seed);
        assert_exact(&topo, EngineMode::Sparse);
    }
}

#[test]
fn random_networks_higher_degree() {
    for seed in 0..6 {
        let topo = generators::random_sc(40, 6, seed);
        assert_exact(&topo, EngineMode::Sparse);
    }
}

#[test]
fn transcript_counts_match_edge_counts() {
    // Theorem 4.1's core accounting: one FORWARD report per edge, one
    // backwards (BCA) return per edge.
    for seed in [3u64, 17] {
        let topo = generators::random_sc(30, 3, seed);
        let e = topo.num_edges();
        let run = assert_exact(&topo, EngineMode::Sparse);
        assert_eq!(run.stats.edges_reported(), e, "one FORWARD per edge");
        assert_eq!(
            run.stats.backs + run.stats.local_backs,
            e,
            "one BCA return per edge"
        );
        assert_eq!(run.stats.bcas(), e);
    }
}

#[test]
fn all_modes_produce_identical_transcripts() {
    let topo = generators::random_sc(20, 3, 11);
    let dense = GtdSession::on(&topo).mode(EngineMode::Dense).run().unwrap();
    let sparse = GtdSession::on(&topo)
        .mode(EngineMode::Sparse)
        .run()
        .unwrap();
    let parallel = GtdSession::on(&topo)
        .mode(EngineMode::Parallel)
        .run()
        .unwrap();
    // tick-stamped equality: the modes agree on *when* every transcript
    // symbol is emitted, not just on the symbol order
    assert_eq!(
        dense.events, sparse.events,
        "dense vs sparse transcripts differ"
    );
    assert_eq!(
        dense.events, parallel.events,
        "dense vs parallel transcripts differ"
    );
    assert_eq!(dense.ticks, sparse.ticks);
    assert_eq!(dense.ticks, parallel.ticks);
}

#[test]
fn repeated_runs_are_deterministic() {
    let topo = generators::random_sc(25, 3, 5);
    let a = GtdSession::on(&topo).run().unwrap();
    let b = GtdSession::on(&topo).run().unwrap();
    assert_eq!(a.events, b.events);
    assert_eq!(a.ticks, b.ticks);
}

#[test]
fn every_root_maps_the_same_network() {
    // The session configures the root directly — no relabelling tricks.
    let topo = generators::random_sc(14, 3, 9);
    for root in topo.node_ids() {
        let run = GtdSession::on(&topo)
            .root(root)
            .run()
            .unwrap_or_else(|e| panic!("root {root}: {e}"));
        run.map
            .verify_against(&topo, root)
            .expect("exact from every root");
        assert_eq!(run.root, root);
        assert!(run.clean_at_end);
    }
}

#[test]
fn parallel_edges_and_two_cycles_mapped() {
    // Adversarial small case: double edges both directions plus a 2-cycle.
    let mut b = TopologyBuilder::new(3, 4);
    for (u, v) in [
        (0u32, 1u32),
        (0, 1),
        (1, 0),
        (1, 0),
        (1, 2),
        (2, 0),
        (0, 2),
        (2, 1),
    ] {
        b.connect_auto(NodeId(u), NodeId(v)).unwrap();
    }
    let topo = b.build().unwrap();
    let run = assert_exact(&topo, EngineMode::Dense);
    assert_eq!(run.map.num_edges(), 8);
}

#[test]
fn ticks_scale_linearly_in_e_times_d() {
    // Lemma 4.4 as a test: the normalized cost stays within a narrow band.
    let mut ratios = Vec::new();
    for n in [12usize, 24, 36] {
        let topo = generators::ring(n);
        let run = assert_exact(&topo, EngineMode::Sparse);
        let ed = (topo.num_edges() * gtd::algo::diameter(&topo) as usize) as f64;
        ratios.push(run.ticks as f64 / ed);
    }
    let (lo, hi) = (
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
    assert!(hi / lo < 1.5, "O(E*D) band too wide: {ratios:?}");
}

#[test]
fn transcript_replays_through_independent_master() {
    // The events captured in the run can be replayed into a fresh master
    // computer and produce the identical map (transcript completeness).
    let topo = generators::random_sc(18, 3, 4);
    let run = GtdSession::on(&topo).run().unwrap();
    let mut master = MasterComputer::new();
    for ev in run.event_stream() {
        master.feed(ev).expect("replay decodes");
    }
    let map = master.into_map().expect("replay terminates");
    assert_eq!(map, run.map);
}

#[test]
fn terminated_event_is_last_and_unique() {
    let topo = generators::random_sc(16, 3, 8);
    let run = GtdSession::on(&topo).run().unwrap();
    let terms = run
        .event_stream()
        .filter(|&e| e == TranscriptEvent::Terminated)
        .count();
    assert_eq!(terms, 1);
    assert_eq!(run.events.last().unwrap().1, TranscriptEvent::Terminated);
    assert_eq!(run.events.first().unwrap().1, TranscriptEvent::Start);
}

#[test]
fn kautz_and_hypercube_families_map_exactly() {
    for topo in [
        generators::kautz(2, 2),
        generators::kautz(2, 3),
        generators::hypercube_bidi(3),
    ] {
        assert_exact(&topo, EngineMode::Sparse);
    }
}
