//! Dynamic-membership integration suite: mutations that change N
//! (node join/leave) and correlated failure bursts, end-to-end through
//! the facade.
//!
//! * the three engine modes must produce identical timelines — epochs,
//!   tick-stamped transcripts, per-epoch node counts, remap latencies —
//!   across join and leave boundaries;
//! * the verified final map must match `DynamicSpec::final_topology` for
//!   every mutation kind on several topology families;
//! * the eager remap policy must bound remap latency at or below the
//!   lazy policy's on a disturbed ring;
//! * the ISSUE's acceptance campaign (membership grid × mappers ×
//!   policies) must complete with a verified map and a remap latency in
//!   every cell.

use gtd::{
    generators, mutation::MUTATION_REGISTRY, Campaign, DynamicSpec, EngineMode, EpochStatus,
    GtdSession, MutationKind, MutationSchedule, NodeId, RemapOutcome, RemapPolicy,
    TopologyMutation,
};

const MODES: [EngineMode; 3] = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel];

fn mutation(kind: MutationKind, selector: u64) -> TopologyMutation {
    TopologyMutation { kind, selector }
}

#[test]
fn modes_produce_identical_timelines_across_join_and_leave_boundaries() {
    // Mid-run membership changes on several families and roots: the
    // timelines must be bit-identical in every mode, including the
    // tick-stamped transcripts and per-epoch node counts.
    let scenarios = [
        (
            generators::random_sc(18, 3, 5),
            NodeId(2),
            MutationSchedule::new().with(60, mutation(MutationKind::NodeJoin, 3)),
        ),
        (
            generators::random_sc(20, 3, 9),
            NodeId(7),
            MutationSchedule::new().with(80, mutation(MutationKind::NodeLeave, 2)),
        ),
        (
            generators::torus(4, 3),
            NodeId(0),
            // a full churn story: join, then a correlated burst, then a
            // leave once the dust settles
            MutationSchedule::new()
                .with(50, mutation(MutationKind::NodeJoin, 1))
                .with(2_500, mutation(MutationKind::Burst, 2))
                .with(9_000, mutation(MutationKind::NodeLeave, 4)),
        ),
    ];
    for (topo, root, schedule) in scenarios {
        let runs: Vec<RemapOutcome> = MODES
            .iter()
            .map(|&mode| {
                GtdSession::on(&topo)
                    .root(root)
                    .mode(mode)
                    .run_dynamic(&schedule)
                    .unwrap_or_else(|e| panic!("({mode:?}, root {root}): {e}"))
            })
            .collect();
        let dense = &runs[0];
        assert!(dense.final_verified());
        for (run, &mode) in runs.iter().zip(&MODES).skip(1) {
            assert_eq!(
                run.epochs.len(),
                dense.epochs.len(),
                "({mode:?}): epoch counts differ"
            );
            for (e, de) in run.epochs.iter().zip(&dense.epochs) {
                assert_eq!(e.status, de.status, "({mode:?}): epoch status differs");
                assert_eq!(e.nodes, de.nodes, "({mode:?}): epoch node counts differ");
                assert_eq!(
                    e.events, de.events,
                    "({mode:?}): tick-stamped transcripts differ"
                );
                assert_eq!(e.map, de.map, "({mode:?}): maps differ");
                assert_eq!(
                    (e.start_tick, e.end_tick),
                    (de.start_tick, de.end_tick),
                    "({mode:?}): epoch boundaries differ"
                );
            }
            assert_eq!(
                run.mutations, dense.mutations,
                "({mode:?}): mutation records"
            );
            assert_eq!(run.final_root, dense.final_root, "({mode:?}): final root");
            assert_eq!(
                run.total_ticks, dense.total_ticks,
                "({mode:?}): total ticks"
            );
        }
    }
}

#[test]
fn final_map_matches_dynamic_spec_final_topology_for_every_kind() {
    // Every mutation kind × three topology families: the live timeline's
    // verified end state must equal the spec-level fold (swap fallback
    // included), and the last epoch's map must decode to exactly it.
    let families = ["ring:12", "random-sc:n=16,delta=3,seed=4", "torus:4,3"];
    for family in families {
        for m in MUTATION_REGISTRY {
            let text = format!("{family}+{}=3@t50", m.name);
            let spec: DynamicSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            let out = GtdSession::on(&spec.build())
                .run_dynamic(&spec.schedule)
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(out.final_verified(), "{text}");
            assert_eq!(out.final_topology, spec.final_topology(), "{text}");
            out.epochs
                .last()
                .unwrap()
                .map
                .as_ref()
                .unwrap()
                .verify_against(&out.final_topology, out.final_root)
                .unwrap_or_else(|e| panic!("{text}: {e:?}"));
            // per-epoch node counts end at the final topology's N
            assert_eq!(
                out.epoch_nodes().last().copied(),
                Some(out.final_topology.num_nodes()),
                "{text}"
            );
        }
    }
}

#[test]
fn membership_timeline_tracks_node_counts_per_epoch() {
    let spec: DynamicSpec = "random-sc:n=14,delta=3,seed=8+node-leave=1@t40+node-join=2@t9000"
        .parse()
        .unwrap();
    let out = GtdSession::on(&spec.build())
        .run_dynamic(&spec.schedule)
        .unwrap();
    assert!(out.final_verified());
    let nodes = out.epoch_nodes();
    assert!(nodes.contains(&13), "leave epoch recorded: {nodes:?}");
    assert_eq!(
        nodes.last().copied(),
        Some(14),
        "join restored N: {nodes:?}"
    );
    // both membership mutations were applied as scheduled and remapped
    for m in &out.mutations {
        assert!(m.applied_at.is_some());
        assert!(m.remap_latency.is_some());
        assert!(m.applied_as.unwrap().changes_membership());
    }
}

#[test]
fn eager_remap_latency_is_bounded_by_lazy_on_a_disturbed_ring() {
    let spec: DynamicSpec = "ring:24+node-leave=3@t200".parse().unwrap();
    let base = spec.build();
    let run = |policy: RemapPolicy| {
        GtdSession::on(&base)
            .policy(policy)
            .run_dynamic(&spec.schedule)
            .unwrap()
    };
    let lazy = run(RemapPolicy::Lazy);
    let eager = run(RemapPolicy::Eager);
    assert!(lazy.final_verified() && eager.final_verified());
    // eager preempts the disturbed first epoch at the mutation
    assert_eq!(eager.epochs[0].status, EpochStatus::Preempted);
    assert_ne!(lazy.epochs[0].status, EpochStatus::Preempted);
    let (e, l) = (
        eager.mutations[0].remap_latency.unwrap(),
        lazy.mutations[0].remap_latency.unwrap(),
    );
    assert!(e <= l, "eager {e} must not exceed lazy {l}");
    // both end on the 23-node ring with a verified map
    for out in [&lazy, &eager] {
        assert_eq!(out.final_topology.num_nodes(), 23);
        assert_eq!(out.epoch_nodes().last().copied(), Some(23));
    }
}

#[test]
fn acceptance_membership_campaign_reports_latency_in_every_cell() {
    // The ISSUE's acceptance grid: membership specs × {gtd, flood-echo}
    // × {lazy, eager}, every cell verified with a remap latency, and
    // eager ≤ lazy median remap latency on the ring workload.
    let report = Campaign::new()
        .parse_specs([
            "ring:64+node-leave=3@t500",
            "random-sc:n=128,delta=3,seed=7+burst=9@t600",
        ])
        .unwrap()
        .mappers(["gtd", "flood-echo"])
        .policies([RemapPolicy::Lazy, RemapPolicy::Eager])
        .jobs(0)
        .run()
        .unwrap();
    assert_eq!(report.records.len(), 2 * 2 * 2);
    assert_eq!(report.error_count(), 0);
    for rec in &report.records {
        let out = rec.result.as_ref().unwrap();
        assert!(
            out.verified,
            "{} × {} × {}: post-mutation map not verified",
            rec.spec, rec.mapper, rec.policy
        );
        let remap = out.remap.as_ref().expect("dynamic cell");
        assert_eq!(remap.latencies.len(), 1, "{}", rec.spec);
        assert!(
            remap.latencies[0].is_some(),
            "{} × {} × {}: remap latency missing",
            rec.spec,
            rec.mapper,
            rec.policy
        );
        // the ring workload lost a member; the random-sc burst kept N
        let expect_n = if rec.spec.starts_with("ring:64") {
            63
        } else {
            128
        };
        assert_eq!(
            remap.epoch_nodes.last().copied(),
            Some(expect_n),
            "{}",
            rec.spec
        );
    }
    let ring_median = |policy: RemapPolicy| {
        report
            .aggregate()
            .into_iter()
            .find(|g| g.spec.starts_with("ring:64") && g.mapper == "gtd" && g.policy == policy)
            .and_then(|g| g.median_remap)
            .expect("ring gtd group has a remap median")
    };
    assert!(
        ring_median(RemapPolicy::Eager) <= ring_median(RemapPolicy::Lazy),
        "eager must not exceed lazy median remap latency on the ring"
    );
}
