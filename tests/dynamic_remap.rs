//! Dynamic-topology integration suite: the §1 "topology might change"
//! scenario end-to-end through the facade.
//!
//! * the three engine modes must produce identical tick-stamped
//!   transcripts, epochs and remap latencies across a mutation boundary;
//! * every mapper follows the same dynamic path, so remap costs are
//!   directly comparable;
//! * mutated specs parse, round-trip, and drive campaigns.

use gtd::{
    generators, DynamicSpec, EngineMode, EpochStatus, GtdSession, MutationKind, MutationSchedule,
    NodeId, RemapOutcome, TopologyMutation,
};

const MODES: [EngineMode; 3] = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel];

fn mutation(kind: MutationKind, selector: u64) -> TopologyMutation {
    TopologyMutation { kind, selector }
}

#[test]
fn modes_produce_identical_transcripts_across_a_mutation_boundary() {
    // Mid-run mutations on several families and roots: the timelines must
    // be bit-identical in every mode, including the tick-stamped
    // transcripts of every epoch.
    let scenarios = [
        (
            generators::random_sc(18, 3, 5),
            NodeId(7),
            MutationSchedule::new().with(70, mutation(MutationKind::DropEdge, 2)),
        ),
        (
            generators::torus(3, 3),
            NodeId(4),
            MutationSchedule::new()
                .with(50, mutation(MutationKind::RewirePort, 1))
                .with(400, mutation(MutationKind::AddEdge, 3)),
        ),
        (
            generators::ring(10),
            NodeId(0),
            // falls back to a label swap (a ring cannot lose a wire)
            MutationSchedule::new().with(120, mutation(MutationKind::DropEdge, 4)),
        ),
    ];
    for (topo, root, schedule) in scenarios {
        let runs: Vec<RemapOutcome> = MODES
            .iter()
            .map(|&mode| {
                GtdSession::on(&topo)
                    .root(root)
                    .mode(mode)
                    .run_dynamic(&schedule)
                    .unwrap_or_else(|e| panic!("({mode:?}, root {root}): {e}"))
            })
            .collect();
        let dense = &runs[0];
        assert!(dense.final_verified());
        for (run, &mode) in runs.iter().zip(&MODES).skip(1) {
            assert_eq!(
                run.epochs.len(),
                dense.epochs.len(),
                "({mode:?}): epoch counts differ"
            );
            for (e, de) in run.epochs.iter().zip(&dense.epochs) {
                assert_eq!(e.status, de.status, "({mode:?}): epoch status differs");
                assert_eq!(
                    e.events, de.events,
                    "({mode:?}): tick-stamped transcripts differ"
                );
                assert_eq!(e.map, de.map, "({mode:?}): maps differ");
                assert_eq!(
                    (e.start_tick, e.end_tick),
                    (de.start_tick, de.end_tick),
                    "({mode:?}): epoch boundaries differ"
                );
            }
            assert_eq!(
                run.mutations, dense.mutations,
                "({mode:?}): mutation records"
            );
            assert_eq!(
                run.total_ticks, dense.total_ticks,
                "({mode:?}): total ticks"
            );
        }
    }
}

#[test]
fn every_epoch_map_is_internally_consistent() {
    let topo = generators::random_sc(20, 3, 13);
    let schedule = MutationSchedule::new()
        .with(100, mutation(MutationKind::RewirePort, 3))
        .with(3_000, mutation(MutationKind::DropEdge, 1));
    let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
    assert!(out.final_verified());
    // the last verified epoch decodes to exactly the final topology
    let last = out.epochs.last().unwrap();
    assert_eq!(last.status, EpochStatus::Verified);
    last.map
        .as_ref()
        .unwrap()
        .verify_against(&out.final_topology, NodeId(0))
        .unwrap();
    // every mutation was applied and remapped
    for m in &out.mutations {
        assert!(m.applied_at.is_some());
        assert!(m.applied_as.is_some());
        assert!(m.remap_latency.is_some());
    }
    // epochs tile the timeline in order
    for w in out.epochs.windows(2) {
        assert!(w[0].end_tick <= w[1].start_tick);
    }
}

#[test]
fn all_mappers_report_comparable_remap_latencies() {
    let spec: DynamicSpec = "random-sc:n=24,delta=3,seed=7+rewire=2@t200"
        .parse()
        .unwrap();
    let base = spec.build();
    let mut latencies = Vec::new();
    for mapper in gtd::all_mappers() {
        let run = mapper
            .map_dynamic(&base, &spec.schedule, NodeId(0))
            .unwrap_or_else(|e| panic!("{}: {e}", mapper.name()));
        assert!(run.verified, "{} final map wrong", mapper.name());
        assert_eq!(run.remap_latencies.len(), 1, "{}", mapper.name());
        latencies.push(run.remap_latencies[0].expect("latency populated"));
    }
    // descending cost order holds for remaps too: gtd > routed-dfs > flood-echo
    assert!(
        latencies[0] > latencies[1] && latencies[1] > latencies[2],
        "{latencies:?}"
    );
}

#[test]
fn dynamic_spec_final_topology_matches_the_live_run() {
    let spec: DynamicSpec = "random-sc:n=16,delta=3,seed=4+drop-edge=1@t50+add-edge=2@t900"
        .parse()
        .unwrap();
    let out = GtdSession::on(&spec.build())
        .run_dynamic(&spec.schedule)
        .unwrap();
    assert_eq!(out.final_topology, spec.final_topology());
}
