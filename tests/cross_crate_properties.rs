//! Property-based tests spanning the whole stack: random networks in,
//! protocol guarantees out. These are the strongest correctness artillery
//! in the repository — every property is a paper claim.

use gtd_core::events::TranscriptEvent;
use gtd_core::{run_single_rca, GtdSession, ProtocolNode, StartBehavior};
use gtd_netsim::{algo, generators, Engine, EngineMode, NodeId};
use gtd_snake::PortPath;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = gtd_netsim::Topology> {
    (4usize..28, 2u8..5, 0u64..1_000_000).prop_map(|(n, d, seed)| generators::random_sc(n, d, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem 4.1: the reconstructed map equals the network, always.
    #[test]
    fn gtd_maps_any_random_network(topo in arb_topology()) {
        let run = GtdSession::on(&topo).run().expect("terminates");
        run.map.verify_against(&topo, NodeId(0)).expect("exact");
        prop_assert!(run.clean_at_end);
        prop_assert_eq!(run.stats.edges_reported(), topo.num_edges());
    }

    /// Lemma 4.3: a single RCA's tick count is linear in the loop length,
    /// with the implementation's constant (≈ 11, asserted ≤ 14) + setup.
    #[test]
    fn rca_cost_linear(topo in arb_topology(), a_raw in 1u32..28) {
        let a = NodeId(1 + a_raw % (topo.num_nodes() as u32 - 1));
        let probe = run_single_rca(&topo, a, EngineMode::Sparse).expect("completes");
        prop_assert!(probe.clean_at_end);
        let l = (probe.dist_to_root + probe.dist_from_root) as u64;
        prop_assert!(probe.ticks >= 3 * l, "speed-1 floor violated");
        prop_assert!(probe.ticks <= 14 * l + 40, "O(D) ceiling violated: {} vs L={}", probe.ticks, l);
    }

    /// Definition 4.1 determinism: the canonical paths the RCA transcribes
    /// equal the tie-broken BFS paths predicted from ground truth.
    #[test]
    fn rca_paths_are_canonical(topo in arb_topology(), a_raw in 1u32..28) {
        let a = NodeId(1 + a_raw % (topo.num_nodes() as u32 - 1));
        let mut engine = Engine::new(&topo, EngineMode::Dense, |meta| {
            let start = if meta.id == a { StartBehavior::SingleRca } else { StartBehavior::Passive };
            ProtocolNode::new(&meta, start)
        });
        let mut ig = Vec::new();
        let mut id = Vec::new();
        let (events, fired) = engine.run_until(3_000_000, |&(_, ev)| ev == TranscriptEvent::RcaComplete);
        prop_assert!(fired, "RCA did not complete");
        for (_, ev) in events {
            match ev {
                TranscriptEvent::IgHop(h) => ig.push(h),
                TranscriptEvent::IdHop(h) => id.push(h),
                _ => {}
            }
        }
        let got_in = PortPath::from_hops(ig);
        let got_out = PortPath::from_hops(id);
        let want_in = PortPath::from_pairs(algo::canonical_path(&topo, a, NodeId(0)).unwrap());
        let want_out = PortPath::from_pairs(algo::canonical_path(&topo, NodeId(0), a).unwrap());
        prop_assert_eq!(got_in, want_in, "A->root path not canonical");
        prop_assert_eq!(got_out, want_out, "root->A path not canonical");
    }

    /// The three engine strategies are observationally identical.
    #[test]
    fn engine_modes_agree(topo in arb_topology()) {
        let dense = GtdSession::on(&topo).mode(EngineMode::Dense).run().expect("dense terminates");
        let sparse = GtdSession::on(&topo).mode(EngineMode::Sparse).run().expect("sparse terminates");
        prop_assert_eq!(&dense.events, &sparse.events);
        prop_assert_eq!(dense.ticks, sparse.ticks);
    }

    /// The map materializes into a valid Topology with identical shape.
    #[test]
    fn map_materializes(topo in arb_topology()) {
        let run = GtdSession::on(&topo).run().expect("terminates");
        let rebuilt = run.map.to_topology().expect("valid topology");
        prop_assert_eq!(rebuilt.num_nodes(), topo.num_nodes());
        prop_assert_eq!(rebuilt.num_edges(), topo.num_edges());
        // degree multiset must match (names permute nodes, degrees don't lie)
        let mut a: Vec<usize> = topo.node_ids().map(|v| topo.out_degree(v)).collect();
        let mut b: Vec<usize> = rebuilt.node_ids().map(|v| rebuilt.out_degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Canonical-path naming is stable across repeated RCAs from the same
    /// initiator (Definition 4.1's "always produces the same canonical
    /// shortest path").
    #[test]
    fn canonical_paths_stable_across_runs(topo in arb_topology(), a_raw in 1u32..28) {
        let a = NodeId(1 + a_raw % (topo.num_nodes() as u32 - 1));
        let p1 = run_single_rca(&topo, a, EngineMode::Sparse).unwrap();
        let p2 = run_single_rca(&topo, a, EngineMode::Sparse).unwrap();
        prop_assert_eq!(p1.ticks, p2.ticks);
    }
}
