//! Chaos sweep: the fault plane and the fault-era mutation kinds must
//! never panic, always end in a structured status, and preserve the
//! engine's determinism contract — byte-identical outcomes across all
//! three engine modes and every shard count — on every topology family.
//! An all-zero plane must be indistinguishable from no plane at all.

use gtd::{
    mutation, DynamicSpec, EngineMode, FaultPlane, GtdSession, MutationKind, MutationSchedule,
    TopologyMutation, TopologySpec,
};

/// One small instance for each of five structurally distinct families.
fn five_family_specs() -> Vec<TopologySpec> {
    [
        "ring:9",
        "torus:3,3",
        "debruijn:2,3",
        "hypercube:3",
        "random-sc:n=12,delta=3,seed=3",
    ]
    .iter()
    .map(|s| s.parse().expect("literal spec parses"))
    .collect()
}

/// The chaos grid: 5 families × {loss, delay} × 3 modes × parallel
/// shard counts {1, 2, 7}. Every cell must complete panic-free in a
/// structured `Verified`/`Partial`/`Exhausted` status (which of the
/// three is the fault schedule's business, not this test's), and the
/// whole `ResilientOutcome` — status, attempts ledger, transcript,
/// map, counters — must be bit-identical across modes and shards.
#[test]
fn faulted_runs_are_structured_and_bit_identical_across_modes_and_shards() {
    let planes = [
        FaultPlane {
            loss: 0.002,
            delay_min: 0,
            delay_max: 0,
            seed: 3,
        },
        FaultPlane {
            loss: 0.0,
            delay_min: 1,
            delay_max: 2,
            seed: 5,
        },
    ];
    for spec in five_family_specs() {
        let topo = spec.build();
        for plane in planes {
            let run = |mode: EngineMode, shards: Option<usize>| {
                let mut session = GtdSession::on(&topo)
                    .mode(mode)
                    .faults(plane)
                    .max_retries(2);
                if let Some(s) = shards {
                    session = session.par_shards(s);
                }
                session.run_resilient().expect("preconditions hold")
            };
            let dense = run(EngineMode::Dense, None);
            assert_eq!(
                dense,
                run(EngineMode::Sparse, None),
                "{spec} {plane:?}: dense vs sparse"
            );
            for shards in [1usize, 2, 7] {
                assert_eq!(
                    dense,
                    run(EngineMode::Parallel, Some(shards)),
                    "{spec} {plane:?}: dense vs parallel/{shards} shards"
                );
            }
            // Structured degradation: a non-verified outcome still
            // carries the retry ledger, and a partial map only ever
            // under-reports (exact on what it covers).
            assert_eq!(dense.attempts.len() as u32, dense.retries() + 1);
            if let Some(map) = &dense.map {
                assert!(map.num_edges() <= topo.num_edges(), "{spec}");
            }
        }
    }
}

/// The fault-era mutation kinds ride the same contract as the clean
/// ones: 5 families × {node-restart, burst-r} × 3 modes × shard counts
/// {1, 2, 7}, every timeline panic-free and bit-identical to dense.
#[test]
fn restart_and_burst_r_timelines_are_bit_identical_across_modes_and_shards() {
    let mutations = [
        TopologyMutation {
            kind: MutationKind::NodeRestart,
            selector: 1,
        },
        TopologyMutation {
            kind: MutationKind::BurstRadius,
            selector: mutation::burst_r_selector(2, 1),
        },
    ];
    for spec in five_family_specs() {
        let topo = spec.build();
        for m in mutations {
            let schedule = MutationSchedule::new().with(35, m);
            let run = |mode: EngineMode, shards: Option<usize>| {
                let mut session = GtdSession::on(&topo).mode(mode);
                if let Some(s) = shards {
                    session = session.par_shards(s);
                }
                session.run_dynamic(&schedule).expect("timeline completes")
            };
            let dense = run(EngineMode::Dense, None);
            assert_eq!(
                dense,
                run(EngineMode::Sparse, None),
                "{spec} + {:?}: dense vs sparse",
                m.kind
            );
            for shards in [1usize, 2, 7] {
                assert_eq!(
                    dense,
                    run(EngineMode::Parallel, Some(shards)),
                    "{spec} + {:?}: dense vs parallel/{shards} shards",
                    m.kind
                );
            }
            assert!(dense.final_verified(), "{spec} + {:?}", m.kind);
        }
    }
}

/// `~loss=0` (or any all-zero plane) parses to exactly the unfaulted
/// spec, and a session carrying the inactive plane produces the
/// bit-identical run: ticks, transcript, map and counters.
#[test]
fn zero_fault_plane_is_bit_identical_to_the_unfaulted_run() {
    for spec in five_family_specs() {
        let zero: DynamicSpec = format!("{spec}~loss=0~delay=0")
            .parse()
            .expect("zero-fault suffix parses");
        let plain: DynamicSpec = spec.to_string().parse().expect("base spec parses");
        assert_eq!(zero, plain, "all-zero plane normalizes away");
        assert!(!zero.fault.is_active());

        let topo = spec.build();
        let unfaulted = GtdSession::on(&topo).run().expect("terminates");
        let zeroed = GtdSession::on(&topo)
            .faults(zero.fault)
            .run()
            .expect("terminates");
        assert_eq!(unfaulted.ticks, zeroed.ticks, "{spec}");
        assert_eq!(unfaulted.events, zeroed.events, "{spec}");
        assert_eq!(unfaulted.map, zeroed.map, "{spec}");
        assert_eq!(unfaulted.stats, zeroed.stats, "{spec}");
    }
}
