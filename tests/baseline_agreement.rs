//! The three mappers — GTD (finite-state), B2 (unbounded-memory DFS) and
//! B1 (unbounded-message flood) — must discover literally the same wires,
//! and their costs must order the way DESIGN.md §2 predicts.

use gtd_baselines::{flood_echo, source_routed_dfs};
use gtd_core::run_gtd;
use gtd_netsim::{algo, generators, EngineMode, NodeId};

#[test]
fn all_three_mappers_agree_on_the_edge_set() {
    for seed in 0..10 {
        let topo = generators::random_sc(30, 3, seed);
        let truth = topo.sorted_edges();

        let run = run_gtd(&topo, EngineMode::Sparse).unwrap();
        run.map.verify_against(&topo, NodeId(0)).unwrap();

        let b2 = source_routed_dfs(&topo, NodeId(0));
        assert_eq!(b2.edges, truth, "B2 seed {seed}");

        let b1 = flood_echo(&topo, NodeId(0));
        assert_eq!(b1.edges, truth, "B1 seed {seed}");
    }
}

#[test]
fn cost_ordering_matches_design_predictions() {
    for seed in 0..5 {
        let topo = generators::random_sc(40, 3, seed);
        let d = algo::diameter(&topo) as u64;
        let e = topo.num_edges() as u64;

        let gtd = run_gtd(&topo, EngineMode::Sparse).unwrap().ticks;
        let b2 = source_routed_dfs(&topo, NodeId(0)).rounds;
        let b1 = flood_echo(&topo, NodeId(0)).rounds;

        // B1 = O(D): by far the fastest.
        assert!(b1 <= d + 2, "B1 {b1} > D+2");
        // B2 = Θ(E·avg-d): between the two.
        assert!(b2 >= e, "B2 {b2} < E {e}");
        assert!(b2 <= e * (d + 1), "B2 {b2} > E(D+1)");
        // GTD pays the finite-state tax on top of B2's walk.
        assert!(gtd > b2, "GTD {gtd} should exceed B2 {b2}");
        assert!(gtd > b1 * 10, "GTD {gtd} should dwarf B1 {b1}");
        // …but stays within its O(E·D) envelope.
        assert!(gtd <= 60 * e * (d + 1), "GTD {gtd} outside O(E*D) envelope");
    }
}

#[test]
fn flood_hides_enormous_bandwidth() {
    // The "unbounded message size" assumption is what B1 buys speed with;
    // make the hidden cost visible and strictly larger than GTD's, which
    // ships one constant-size character per wire per tick.
    let topo = generators::random_sc(40, 3, 1);
    let b1 = flood_echo(&topo, NodeId(0));
    let per_round_records = b1.records_shipped / b1.rounds.max(1);
    assert!(
        per_round_records as usize > topo.num_edges(),
        "flooding ships whole edge-sets per wire per round"
    );
}

#[test]
fn baselines_handle_structured_families() {
    for topo in [
        generators::ring(12),
        generators::torus(4, 4),
        generators::debruijn(2, 4),
        generators::tree_loop_random(3, 5),
        generators::line_bidi(9),
    ] {
        assert!(source_routed_dfs(&topo, NodeId(0)).verify_against(&topo));
        assert!(flood_echo(&topo, NodeId(0)).verify_against(&topo));
    }
}

#[test]
fn gtd_and_b2_walk_the_same_number_of_edges() {
    // Both perform the identical DFS edge walk; their forward-move counts
    // must both equal E exactly.
    let topo = generators::random_sc(25, 4, 2);
    let run = run_gtd(&topo, EngineMode::Sparse).unwrap();
    let b2 = source_routed_dfs(&topo, NodeId(0));
    assert_eq!(run.stats.edges_reported() as u64, b2.forward_moves);
    assert_eq!(b2.forward_moves as usize, topo.num_edges());
}
