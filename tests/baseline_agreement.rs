//! The three mappers — GTD (finite-state), routed DFS (unbounded memory)
//! and flood-echo (unbounded messages) — all run through the common
//! [`TopologyMapper`] trait, must discover literally the same wires, and
//! their costs must order the way DESIGN.md §2 predicts.

use gtd::{
    algo, all_mappers, generators, FloodEchoMapper, GtdMapper, NodeId, RoutedDfsMapper,
    TopologyMapper,
};

#[test]
fn all_three_mappers_agree_on_the_edge_set() {
    for seed in 0..10 {
        let topo = generators::random_sc(30, 3, seed);
        let truth = topo.sorted_edges();
        for mapper in all_mappers() {
            let run = mapper
                .map_network(&topo, NodeId(0))
                .expect("mapper succeeds");
            assert_eq!(run.edges, truth, "{} seed {seed}", mapper.name());
            assert!(run.verify_against(&topo));
        }
    }
}

#[test]
fn all_three_mappers_agree_from_non_default_roots() {
    let topo = generators::random_sc(24, 3, 3);
    let truth = topo.sorted_edges();
    for root in [5u32, 13, 23] {
        for mapper in all_mappers() {
            let run = mapper
                .map_network(&topo, NodeId(root))
                .expect("mapper succeeds");
            assert_eq!(run.edges, truth, "{} root {root}", mapper.name());
        }
    }
}

#[test]
fn cost_ordering_matches_design_predictions() {
    let gtd_mapper = GtdMapper::default();
    let dfs_mapper = RoutedDfsMapper;
    let flood_mapper = FloodEchoMapper;
    for seed in 0..5 {
        let topo = generators::random_sc(40, 3, seed);
        let d = algo::diameter(&topo) as u64;
        let e = topo.num_edges() as u64;

        let gtd = gtd_mapper.map_network(&topo, NodeId(0)).unwrap().rounds;
        let b2 = dfs_mapper.map_network(&topo, NodeId(0)).unwrap().rounds;
        let b1 = flood_mapper.map_network(&topo, NodeId(0)).unwrap().rounds;

        // flood-echo = O(D): by far the fastest.
        assert!(b1 <= d + 2, "B1 {b1} > D+2");
        // routed DFS = Θ(E·avg-d): between the two.
        assert!(b2 >= e, "B2 {b2} < E {e}");
        assert!(b2 <= e * (d + 1), "B2 {b2} > E(D+1)");
        // GTD pays the finite-state tax on top of B2's walk.
        assert!(gtd > b2, "GTD {gtd} should exceed B2 {b2}");
        assert!(gtd > b1 * 10, "GTD {gtd} should dwarf B1 {b1}");
        // …but stays within its O(E·D) envelope.
        assert!(gtd <= 60 * e * (d + 1), "GTD {gtd} outside O(E*D) envelope");
    }
}

#[test]
fn flood_hides_enormous_bandwidth() {
    // The "unbounded message size" assumption is what flood-echo buys
    // speed with; make the hidden cost visible through the trait's message
    // counter — GTD ships one constant-size character per wire per tick
    // and reports no message count at all.
    let topo = generators::random_sc(40, 3, 1);
    let flood = FloodEchoMapper.map_network(&topo, NodeId(0)).unwrap();
    let per_round_msgs = flood.messages.expect("flood counts messages") / flood.rounds.max(1);
    assert!(
        per_round_msgs as usize >= topo.num_edges(),
        "flooding transmits on every wire every round"
    );
    let gtd = GtdMapper::default().map_network(&topo, NodeId(0)).unwrap();
    assert_eq!(
        gtd.messages, None,
        "finite-state GTD has no message-count concept"
    );
}

#[test]
fn baselines_handle_structured_families() {
    for topo in [
        generators::ring(12),
        generators::torus(4, 4),
        generators::debruijn(2, 4),
        generators::tree_loop_random(3, 5),
        generators::line_bidi(9),
    ] {
        for mapper in all_mappers() {
            assert!(
                mapper
                    .map_network(&topo, NodeId(0))
                    .unwrap()
                    .verify_against(&topo),
                "{} failed",
                mapper.name()
            );
        }
    }
}

#[test]
fn gtd_and_routed_dfs_walk_the_same_number_of_edges() {
    // Both perform the identical DFS edge walk; their forward-move counts
    // must both equal E exactly.
    let topo = generators::random_sc(25, 4, 2);
    let run = gtd::GtdSession::on(&topo).run().unwrap();
    let b2 = gtd::baselines::source_routed_dfs(&topo, NodeId(0));
    assert_eq!(run.stats.edges_reported() as u64, b2.forward_moves);
    assert_eq!(b2.forward_moves as usize, topo.num_edges());
}
