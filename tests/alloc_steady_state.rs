//! Zero-allocation steady state: once the engine's per-tick scratch
//! (event buffers, step list, per-shard frontiers, timing wheels, dwell
//! queues) has reached its high-water capacity, the tick loop must never
//! touch the allocator again — in every mode, including the sharded
//! parallel engine whose pooled phase dispatch is pure atomics. The
//! counting global allocator is process-wide, so worker-pool threads are
//! inside the measured window too. Any allocation in `Engine::tick`, a
//! shard phase, the pool handshake, `ProtocolNode::step` or the snake
//! queues fails the test.
//!
//! (This file holds exactly one test: the counter is global to the test
//! binary, and a concurrently running test would pollute the window.)

use gtd::{generators, EngineMode, NodeId, TranscriptEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Tick until the root emits `Terminated`, returning ticks spent.
fn run_one_mapping(
    engine: &mut gtd::Engine<gtd::ProtocolNode>,
    events: &mut Vec<(NodeId, TranscriptEvent)>,
) -> u64 {
    let start = engine.tick_count();
    for _ in 0..1_000_000u64 {
        events.clear();
        engine.tick(events);
        if events
            .iter()
            .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
        {
            return engine.tick_count() - start;
        }
    }
    panic!("mapping did not terminate");
}

#[test]
fn steady_state_tick_loop_is_allocation_free() {
    for (mode, shards) in [
        (EngineMode::Dense, None),
        (EngineMode::Sparse, None),
        (EngineMode::Parallel, None),
        // A forced two-shard split engages the persistent worker pool,
        // putting the epoch-handshake dispatch and the pooled
        // step/scatter/merge phases inside the measured window.
        (EngineMode::Parallel, Some(2)),
    ] {
        let topo = generators::ring(32);
        let mut engine = gtd::protocol::build_gtd_engine_sharded(&topo, mode, shards);
        let mut events: Vec<(NodeId, TranscriptEvent)> = Vec::with_capacity(1024);
        // Warm-up: one complete mapping drives every queue, buffer and
        // timer structure to its high-water capacity (runs are
        // deterministic, so a second identical round cannot exceed it).
        run_one_mapping(&mut engine, &mut events);
        // settle to quiescence, then restart the master for round two
        while !engine.is_quiet() {
            events.clear();
            engine.tick(&mut events);
        }
        engine.node_mut(NodeId(0)).master_restart();
        // Measured window: the entire second mapping — RESET flood, every
        // RCA/BCA, loop tokens, KILL/UNMARK — plus its settling ticks.
        let before = ALLOCS.load(Ordering::Relaxed);
        let ticks = run_one_mapping(&mut engine, &mut events);
        while !engine.is_quiet() {
            events.clear();
            engine.tick(&mut events);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        assert!(
            ticks > 1_000,
            "window must cover a real mapping ({mode:?}/{shards:?})"
        );
        assert_eq!(
            after - before,
            0,
            "{mode:?}/{shards:?}: the steady-state tick loop allocated"
        );
    }
}
