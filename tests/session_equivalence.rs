//! Engine-mode equivalence through the [`GtdSession`] builder: the three
//! execution strategies must produce identical tick-stamped transcripts,
//! identical maps and identical tick counts on every workload family —
//! including from non-default roots — and a tick budget must turn a
//! too-long run into a structured error instead of a hang.

use gtd::{
    generators, EngineMode, GtdError, GtdSession, NodeId, PreconditionViolation, Topology,
    TopologyBuilder,
};

const MODES: [EngineMode; 3] = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel];

/// The five families of the equivalence matrix, each with a non-zero root.
fn families() -> Vec<(&'static str, Topology, NodeId)> {
    vec![
        ("ring", generators::ring(9), NodeId(4)),
        ("torus", generators::torus(3, 3), NodeId(5)),
        ("debruijn", generators::debruijn(2, 3), NodeId(3)),
        (
            "tree_loop_random",
            generators::tree_loop_random(2, 7),
            NodeId(6),
        ),
        ("random_sc", generators::random_sc(20, 3, 3), NodeId(17)),
    ]
}

#[test]
fn modes_agree_on_every_family_with_non_zero_roots() {
    for (name, topo, root) in families() {
        let runs: Vec<_> = MODES
            .iter()
            .map(|&mode| {
                GtdSession::on(&topo)
                    .root(root)
                    .mode(mode)
                    .run()
                    .unwrap_or_else(|e| panic!("{name} ({mode:?}, root {root}): {e}"))
            })
            .collect();
        for (run, &mode) in runs.iter().zip(&MODES) {
            run.map
                .verify_against(&topo, root)
                .unwrap_or_else(|e| panic!("{name} ({mode:?}): inexact map: {e}"));
            assert!(run.clean_at_end, "{name} ({mode:?}): Lemma 4.2 violated");
        }
        let dense = &runs[0];
        for (run, &mode) in runs.iter().zip(&MODES).skip(1) {
            assert_eq!(run.map, dense.map, "{name} ({mode:?}): maps differ");
            assert_eq!(
                run.ticks, dense.ticks,
                "{name} ({mode:?}): tick counts differ"
            );
            assert_eq!(
                run.events, dense.events,
                "{name} ({mode:?}): tick-stamped transcripts differ"
            );
            assert_eq!(run.stats, dense.stats, "{name} ({mode:?}): stats differ");
        }
    }
}

#[test]
fn modes_agree_on_repeated_rounds() {
    let topo = generators::random_sc(16, 3, 8);
    let root = NodeId(7);
    let per_mode: Vec<_> = MODES
        .iter()
        .map(|&mode| {
            GtdSession::on(&topo)
                .root(root)
                .mode(mode)
                .run_repeated(2)
                .unwrap()
        })
        .collect();
    for rounds in &per_mode[1..] {
        assert_eq!(rounds[0].events, per_mode[0][0].events);
        assert_eq!(rounds[1].events, per_mode[0][1].events);
        assert_eq!(rounds[1].ticks, per_mode[0][1].ticks);
    }
}

#[test]
fn tick_budget_exhaustion_errors_instead_of_hanging() {
    let topo = generators::random_sc(20, 3, 1);
    for mode in MODES {
        match GtdSession::on(&topo).mode(mode).tick_budget(40).run() {
            Err(GtdError::BudgetExhausted { budget: 40, ticks }) => {
                assert!(ticks >= 40, "budget error must report the spent ticks")
            }
            other => panic!("({mode:?}) expected BudgetExhausted, got {other:?}"),
        }
    }
}

#[test]
fn budget_exhaustion_applies_per_round() {
    // A budget sized off one measured round: the repeated run either fits
    // every round under it or fails fast with the budget error — never a
    // hang.
    let topo = generators::ring(8);
    let single = GtdSession::on(&topo).run().unwrap();
    let budget = single.ticks + 1;
    match GtdSession::on(&topo).tick_budget(budget).run_repeated(200) {
        // each round is budgeted separately, so either every round fits…
        Ok(runs) => assert_eq!(runs.len(), 200),
        // …or the first too-slow round reports the exhaustion
        Err(GtdError::BudgetExhausted { budget: b, .. }) => assert_eq!(b, budget),
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn generous_budget_changes_nothing() {
    let topo = generators::ring(6);
    let capped = GtdSession::on(&topo).tick_budget(u64::MAX).run().unwrap();
    let free = GtdSession::on(&topo).run().unwrap();
    assert_eq!(capped.events, free.events);
    assert_eq!(capped.ticks, free.ticks);
}

#[test]
fn disconnected_networks_fail_fast_not_slow() {
    // Without the up-front check this network would burn the entire
    // default budget before erroring; the precondition variant is
    // distinguishable from budget exhaustion.
    let mut b = TopologyBuilder::new(6, 3);
    for (u, v) in [(0u32, 1u32), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)] {
        b.connect_auto(NodeId(u), NodeId(v)).unwrap();
    }
    b.connect_auto(NodeId(1), NodeId(2)).unwrap(); // one-way bridges
    b.connect_auto(NodeId(3), NodeId(4)).unwrap();
    let topo = b.build().unwrap();
    for mode in MODES {
        assert_eq!(
            GtdSession::on(&topo).mode(mode).run().unwrap_err(),
            GtdError::Precondition(PreconditionViolation::NotStronglyConnected),
            "({mode:?})"
        );
    }
}

#[test]
fn out_of_range_root_is_a_precondition_error() {
    let topo = generators::ring(4);
    assert_eq!(
        GtdSession::on(&topo).root(NodeId(4)).run().unwrap_err(),
        GtdError::Precondition(PreconditionViolation::RootOutOfRange {
            root: NodeId(4),
            nodes: 4
        })
    );
}
