//! Event-driven frontier equivalence: the sparse engine's active-frontier
//! scheduler (wake deadlines + timing wheel + input worklist) and the
//! lull fast-forward must be invisible — every engine mode produces
//! bit-identical timelines on every topology family under every mutation
//! kind. This is the acceptance suite for the frontier rewrite: a single
//! missed wake, a stale timer surfacing as a step, or a lull skipped past
//! a mutation boundary shows up as a diverging transcript here.

use gtd::{
    DynamicSpec, EngineMode, GtdSession, MutationKind, MutationSchedule, RemapOutcome,
    TopologyMutation, TopologySpec,
};

/// One small instance per registered spec family (all 10).
fn ten_family_specs() -> Vec<TopologySpec> {
    [
        "ring:9",
        "line-bidi:8",
        "torus:3,3",
        "debruijn:2,3",
        "kautz:2,3",
        "hypercube:3",
        "complete:5",
        "random-sc:n=12,delta=3,seed=3",
        "bidi-grid-faulty:w=4,h=3,p=0.2,seed=2",
        "tree-loop:h=2,seed=1",
    ]
    .iter()
    .map(|s| s.parse().expect("literal spec parses"))
    .collect()
}

fn run(topo: &gtd::Topology, mode: EngineMode, schedule: &MutationSchedule) -> RemapOutcome {
    GtdSession::on(topo)
        .mode(mode)
        .run_dynamic(schedule)
        .expect("timeline completes")
}

/// The full grid: 10 families × 9 mutation kinds × 3 engine modes, each
/// mutation landing mid-first-epoch. Dense is the reference; sparse
/// (frontier) and parallel must reproduce its epochs, tick-stamped
/// transcripts, mutation outcomes and remap latencies exactly.
#[test]
fn all_families_and_mutation_kinds_are_bit_identical_across_modes() {
    let specs = ten_family_specs();
    assert_eq!(specs.len(), 10, "one instance per registered family");
    assert_eq!(MutationKind::ALL.len(), 9);
    for spec in &specs {
        let topo = spec.build();
        for kind in MutationKind::ALL {
            let schedule = MutationSchedule::new().with(35, TopologyMutation { kind, selector: 1 });
            let dense = run(&topo, EngineMode::Dense, &schedule);
            let sparse = run(&topo, EngineMode::Sparse, &schedule);
            let parallel = run(&topo, EngineMode::Parallel, &schedule);
            assert_eq!(dense, sparse, "{spec} + {kind:?}: dense vs sparse");
            assert_eq!(dense, parallel, "{spec} + {kind:?}: dense vs parallel");
            assert!(dense.final_verified(), "{spec} + {kind:?}");
        }
    }
}

/// Shard-count sweep for the sharded parallel engine: an explicit
/// `par_shards` knob forces event ticks through the persistent worker
/// pool (even where the active-fraction heuristic would run inline), so
/// this exercises the pooled step/scatter/merge phases, cross-shard
/// lanes, saturated ticks and post-mutation shard rebuilds. Timelines,
/// transcripts, mutation outcomes and remap latencies must be
/// bit-identical to dense at every shard count.
#[test]
fn parallel_shard_counts_are_bit_identical() {
    let specs = ten_family_specs();
    for spec in specs.iter().take(5) {
        let topo = spec.build();
        for kind in MutationKind::ALL.into_iter().take(3) {
            let schedule = MutationSchedule::new().with(35, TopologyMutation { kind, selector: 1 });
            let dense = run(&topo, EngineMode::Dense, &schedule);
            for shards in [1usize, 2, 7, 16] {
                let sharded = GtdSession::on(&topo)
                    .mode(EngineMode::Parallel)
                    .par_shards(shards)
                    .run_dynamic(&schedule)
                    .expect("timeline completes");
                assert_eq!(
                    dense, sharded,
                    "{spec} + {kind:?}: dense vs parallel/{shards} shards"
                );
            }
        }
    }
}

/// A far-future mutation tick forces the session through the frontier's
/// O(1) idle fast-forward in every mode: the timelines must still agree
/// tick-for-tick (the skipped span is observationally empty), and the
/// clock must really have advanced past the mutation.
#[test]
fn lull_fast_forward_to_a_far_mutation_is_identical_across_modes() {
    let spec: DynamicSpec = "ring:8+rewire=2@t200000".parse().unwrap();
    let topo = spec.build();
    let dense = run(&topo, EngineMode::Dense, &spec.schedule);
    let sparse = run(&topo, EngineMode::Sparse, &spec.schedule);
    let parallel = run(&topo, EngineMode::Parallel, &spec.schedule);
    assert_eq!(dense, sparse);
    assert_eq!(dense, parallel);
    assert_eq!(dense.mutations[0].applied_at, Some(200_000));
    assert!(dense.total_ticks >= 200_000);
    assert!(dense.final_verified());
}

/// Static sessions take the lull fast-forward through every speed-1
/// dwell; the reported tick counts and transcripts must match the dense
/// reference exactly (this is the path the ring:1024 perf claim rides).
#[test]
fn static_runs_agree_after_lull_skipping() {
    for spec in ten_family_specs() {
        let topo = spec.build();
        let dense = GtdSession::on(&topo)
            .mode(EngineMode::Dense)
            .run()
            .expect("terminates");
        let sparse = GtdSession::on(&topo)
            .mode(EngineMode::Sparse)
            .run()
            .expect("terminates");
        assert_eq!(dense.ticks, sparse.ticks, "{spec}");
        assert_eq!(dense.events, sparse.events, "{spec}");
        assert_eq!(dense.map, sparse.map, "{spec}");
        assert_eq!(dense.stats, sparse.stats, "{spec}");
    }
}
